package vec

import (
	"math"

	"nra/internal/value"
)

// Vector is one column of a batch: a typed payload array plus a NULL
// bitmap. Kind selects the payload; columns whose non-NULL values mix
// kinds (or are all NULL) fall back to a boxed []value.Value payload
// with Kind == value.KindNull, over which every kernel takes its
// generic path.
type Vector struct {
	// Kind is the payload discriminator; value.KindNull marks the boxed
	// fallback payload in Vals.
	Kind value.Kind
	// Ints holds value.KindInt payloads, and value.KindBool payloads as
	// 0/1.
	Ints []int64
	// Floats holds value.KindFloat payloads.
	Floats []float64
	// Codes holds value.KindString payloads as dictionary codes.
	Codes []int32
	// Dict maps a string column's codes to strings, in first-appearance
	// order.
	Dict []string
	// Nulls has bit i set when row i is NULL (maintained for the boxed
	// fallback too).
	Nulls Bitmap
	// Vals is the boxed fallback payload.
	Vals []value.Value

	n int
}

// FromValues converts one column of values into a Vector. The input
// slice is not retained.
func FromValues(vs []value.Value) *Vector {
	n := len(vs)
	v := &Vector{Nulls: NewBitmap(n), n: n}
	k, mixed := value.BulkKind(vs)
	if mixed || k == value.KindNull {
		v.Kind = value.KindNull
		v.Vals = append([]value.Value(nil), vs...)
		for i, x := range vs {
			if x.IsNull() {
				v.Nulls.Set(i)
			}
		}
		return v
	}
	v.Kind = k
	switch k {
	case value.KindInt:
		v.Ints = make([]int64, n)
		value.BulkInts(vs, v.Ints, v.Nulls)
	case value.KindBool:
		v.Ints = make([]int64, n)
		value.BulkBools(vs, v.Ints, v.Nulls)
	case value.KindFloat:
		v.Floats = make([]float64, n)
		value.BulkFloats(vs, v.Floats, v.Nulls)
	case value.KindString:
		strs := make([]string, n)
		value.BulkStrings(vs, strs, v.Nulls)
		v.Codes = make([]int32, n)
		codes := make(map[string]int32, 64)
		for i, s := range strs {
			if v.Nulls.Get(i) {
				continue
			}
			c, ok := codes[s]
			if !ok {
				c = int32(len(v.Dict))
				codes[s] = c
				v.Dict = append(v.Dict, s)
			}
			v.Codes[i] = c
		}
	}
	return v
}

// Gather returns the dense vector of v's rows at idx, in order. A
// negative index yields NULL — the outer-join padding row. String
// vectors share the dictionary and gather codes, so no string is copied
// or re-hashed; boxed vectors gather the boxed values.
func Gather(v *Vector, idx []int32) *Vector {
	n := len(idx)
	out := &Vector{Kind: v.Kind, Nulls: NewBitmap(n), n: n}
	switch v.Kind {
	case value.KindInt, value.KindBool:
		out.Ints = make([]int64, n)
		for i, j := range idx {
			if j < 0 || v.Nulls.Get(int(j)) {
				out.Nulls.Set(i)
				continue
			}
			out.Ints[i] = v.Ints[j]
		}
	case value.KindFloat:
		out.Floats = make([]float64, n)
		for i, j := range idx {
			if j < 0 || v.Nulls.Get(int(j)) {
				out.Nulls.Set(i)
				continue
			}
			out.Floats[i] = v.Floats[j]
		}
	case value.KindString:
		out.Codes = make([]int32, n)
		out.Dict = v.Dict
		for i, j := range idx {
			if j < 0 || v.Nulls.Get(int(j)) {
				out.Nulls.Set(i)
				continue
			}
			out.Codes[i] = v.Codes[j]
		}
	default: // boxed
		out.Vals = make([]value.Value, n)
		for i, j := range idx {
			if j < 0 {
				out.Nulls.Set(i)
				continue
			}
			out.Vals[i] = v.Vals[j]
			if v.Nulls.Get(int(j)) {
				out.Nulls.Set(i)
			}
		}
	}
	return out
}

// NewVector allocates an all-NULL-clear vector of n rows with the
// payload array for the given kind (value.KindNull allocates the boxed
// fallback). Decoders — the columnar segment reader in
// internal/colstore — fill the payload and NULL bitmap in place.
func NewVector(kind value.Kind, n int) *Vector {
	v := &Vector{Kind: kind, Nulls: NewBitmap(n), n: n}
	switch kind {
	case value.KindInt, value.KindBool:
		v.Ints = make([]int64, n)
	case value.KindFloat:
		v.Floats = make([]float64, n)
	case value.KindString:
		v.Codes = make([]int32, n)
	default:
		v.Vals = make([]value.Value, n)
	}
	return v
}

// Len returns the row count.
func (v *Vector) Len() int { return v.n }

// IsNull reports whether row i is NULL.
func (v *Vector) IsNull(i int) bool { return v.Nulls.Get(i) }

// Value boxes row i back into a value.Value.
func (v *Vector) Value(i int) value.Value {
	if v.Kind == value.KindNull {
		return v.Vals[i]
	}
	if v.Nulls.Get(i) {
		return value.Null
	}
	switch v.Kind {
	case value.KindInt:
		return value.Int(v.Ints[i])
	case value.KindFloat:
		return value.Float(v.Floats[i])
	case value.KindString:
		return value.Str(v.Dict[v.Codes[i]])
	case value.KindBool:
		return value.Bool(v.Ints[i] != 0)
	}
	return value.Null
}

// IdenticalAt reports value.Identical between a's row i and b's row j,
// taking the typed fast path when both sides share a payload kind.
func IdenticalAt(a *Vector, i int, b *Vector, j int) bool {
	an, bn := a.IsNull(i), b.IsNull(j)
	if an || bn {
		return an && bn
	}
	if a.Kind == b.Kind {
		switch a.Kind {
		case value.KindInt, value.KindBool:
			return a.Ints[i] == b.Ints[j]
		case value.KindFloat:
			af, bf := a.Floats[i], b.Floats[j]
			return af == bf || (math.IsNaN(af) && math.IsNaN(bf))
		case value.KindString:
			return a.Dict[a.Codes[i]] == b.Dict[b.Codes[j]]
		}
	}
	return value.Identical(a.Value(i), b.Value(j))
}

// KeyEqualAt reports whether a's row i and b's row j have equal
// value.AppendKey encodings — the equality the row engine's KeyOn-keyed
// hash tables and group detection use. It coincides with IdenticalAt on
// everything but NaN payloads, where the canonical encoding compares
// IEEE bit patterns, and the extreme int64/float boundary, where the
// integral-float widening of the encoding is authoritative.
func KeyEqualAt(a *Vector, i int, b *Vector, j int) bool {
	av, bv := a.Value(i), b.Value(j)
	at, ap := keyClass(av)
	bt, bp := keyClass(bv)
	if at != bt {
		return false
	}
	if at == 3 {
		return av.Text() == bv.Text()
	}
	return ap == bp
}

// keyClass returns the value.AppendKey tag and (for fixed-width kinds)
// the 8-byte payload word of v's canonical encoding — the pair two
// values share iff their encodings are equal, string payloads excepted.
func keyClass(v value.Value) (tag uint8, payload uint64) {
	switch v.Kind() {
	case value.KindNull:
		return 0, 0
	case value.KindInt:
		return 1, uint64(v.Int64())
	case value.KindFloat:
		// Integral floats share the integer tag, exactly as AppendKey.
		if f := v.Float64(); f == math.Trunc(f) && f >= math.MinInt64 && f < math.MaxInt64 {
			return 1, uint64(int64(f))
		}
		return 2, math.Float64bits(v.Float64())
	case value.KindString:
		return 3, 0
	case value.KindBool:
		if v.Truth().IsTrue() {
			return 4, 1
		}
		return 4, 0
	}
	return 0xff, 0
}
