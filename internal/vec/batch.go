package vec

import (
	"nra/internal/relation"
	"nra/internal/value"
)

// Batch is a window of rows over a set of column vectors. The vectors
// are full-height (one entry per relation row) and shared between the
// windows of one scan; Start/End delimit the window and Sel optionally
// restricts it further to an ascending list of absolute row indexes.
// A non-nil empty Sel means "no rows selected" — distinct from nil,
// which means "every row in the window".
type Batch struct {
	// Schema describes the columns (always flat: no nested attributes).
	Schema *relation.Schema
	// Cols holds one vector per schema column.
	Cols []*Vector
	// Start and End delimit the window [Start, End) of rows this batch
	// covers. Kernel callers keep Start 64-aligned so NULL-bitmap
	// windows slice on word boundaries.
	Start, End int
	// Sel, when non-nil, lists the selected absolute row indexes within
	// the window, ascending.
	Sel []int32
	// Offsets optionally carries per-level group-offset arrays for the
	// fused nest+link chain: Offsets[l][g] is the position (into the
	// sorted row order) where level-l group g starts, with a final
	// sentinel entry at the row count.
	Offsets [][]int32
}

// FromRelation converts a flat relation into a single whole-relation
// batch. ok is false when the schema has nested attributes, which the
// batch representation does not model — callers fall back to the row
// engine.
func FromRelation(rel *relation.Relation) (*Batch, bool) {
	return FromRelationCols(rel, nil)
}

// FromRelationCols converts only the columns marked in needed (nil = all
// of them); pruned entries stay nil, which is safe for kernels that never
// touch them. Wide base tables make this the difference between paying
// for every column and paying for the handful the query reads.
func FromRelationCols(rel *relation.Relation, needed []bool) (*Batch, bool) {
	if len(rel.Schema.Subs) > 0 {
		return nil, false
	}
	n := rel.Len()
	cols := make([]*Vector, len(rel.Schema.Cols))
	for c := range cols {
		if needed != nil && !needed[c] {
			continue
		}
		cols[c] = columnVector(rel.Tuples, c)
	}
	return &Batch{Schema: rel.Schema, Cols: cols, Start: 0, End: n}, true
}

// ColumnVector extracts column c of the tuples into a typed vector —
// the public entry point for callers that memoize per-column
// conversions (catalog table versions are copy-on-write, so a version's
// converted columns never go stale).
func ColumnVector(tuples []relation.Tuple, c int) *Vector {
	return columnVector(tuples, c)
}

// columnVector extracts column c of the tuples into a typed vector. It
// reads each atom in place through pointer accessors — staging the
// column into a []value.Value first would copy a 5-word struct with a
// string header per cell, and the write barriers on those copies cost
// more than the extraction itself. The column-at-a-time order keeps each
// inner loop a tight, branch-predictable stream (a row-major pass that
// fills all columns at once measures ~20% slower end to end).
func columnVector(tuples []relation.Tuple, c int) *Vector {
	n := len(tuples)
	v := &Vector{Nulls: NewBitmap(n), n: n}
	k := value.KindNull
	for i := range tuples {
		if kk := tuples[i].Atoms[c].Kind(); kk != value.KindNull {
			k = kk
			break
		}
	}
	v.Kind = k
	switch k {
	case value.KindNull: // all-NULL column: boxed, every bit set
		v.Vals = make([]value.Value, n)
		for i := 0; i < n; i++ {
			v.Nulls.Set(i)
		}
	case value.KindInt, value.KindBool:
		v.Ints = make([]int64, n)
		for i := range tuples {
			a := &tuples[i].Atoms[c]
			switch a.Kind() {
			case k:
				v.Ints[i] = a.PayloadInt()
			case value.KindNull:
				v.Nulls.Set(i)
			default:
				return boxedColumn(tuples, c)
			}
		}
	case value.KindFloat:
		v.Floats = make([]float64, n)
		for i := range tuples {
			a := &tuples[i].Atoms[c]
			switch a.Kind() {
			case value.KindFloat:
				v.Floats[i] = a.PayloadFloat()
			case value.KindNull:
				v.Nulls.Set(i)
			default:
				return boxedColumn(tuples, c)
			}
		}
	case value.KindString:
		v.Codes = make([]int32, n)
		codes := make(map[string]int32, 64)
		for i := range tuples {
			a := &tuples[i].Atoms[c]
			switch a.Kind() {
			case value.KindString:
				s := a.PayloadString()
				code, ok := codes[s]
				if !ok {
					code = int32(len(v.Dict))
					codes[s] = code
					v.Dict = append(v.Dict, s)
				}
				v.Codes[i] = code
			case value.KindNull:
				v.Nulls.Set(i)
			default:
				return boxedColumn(tuples, c)
			}
		}
	}
	return v
}

// boxedColumn is the mixed-kind fallback: the column keeps boxed values
// and every kernel takes its generic path over it.
func boxedColumn(tuples []relation.Tuple, c int) *Vector {
	n := len(tuples)
	v := &Vector{Kind: value.KindNull, Nulls: NewBitmap(n), n: n, Vals: make([]value.Value, n)}
	for i := range tuples {
		v.Vals[i] = tuples[i].Atoms[c]
		if v.Vals[i].IsNull() {
			v.Nulls.Set(i)
		}
	}
	return v
}

// Rows returns the number of selected rows in the window.
func (b *Batch) Rows() int {
	if b.Sel != nil {
		return len(b.Sel)
	}
	return b.End - b.Start
}

// ForEachRow calls fn with each selected absolute row index, in order.
func (b *Batch) ForEachRow(fn func(i int)) {
	if b.Sel != nil {
		for _, s := range b.Sel {
			fn(int(s))
		}
		return
	}
	for i := b.Start; i < b.End; i++ {
		fn(i)
	}
}

// AppendTuple materializes absolute row i as a relation tuple.
func (b *Batch) AppendTuple(rel *relation.Relation, i int) {
	atoms := make([]value.Value, len(b.Cols))
	for c, v := range b.Cols {
		atoms[c] = v.Value(i)
	}
	rel.Append(relation.Tuple{Atoms: atoms})
}

// ToRelation materializes the selected window rows back into a
// relation, preserving order. The atoms of all rows share one backing
// array — one allocation instead of one per row — and the fill is
// column-at-a-time with typed inner loops: non-string cells are written
// through the in-place payload setters, which never touch the string
// header of a freshly zeroed Value and therefore incur no GC write
// barrier, and NULL cells are not written at all (the zero Value is
// NULL).
func (b *Batch) ToRelation() *relation.Relation {
	out := relation.New(b.Schema)
	rows, width := b.Rows(), len(b.Cols)
	if rows == 0 {
		return out
	}
	out.Tuples = make([]relation.Tuple, rows)
	backing := make([]value.Value, rows*width)
	for r := 0; r < rows; r++ {
		out.Tuples[r] = relation.Tuple{Atoms: backing[r*width : r*width+width : r*width+width]}
	}
	idx := b.Sel
	if idx == nil {
		idx = make([]int32, 0, rows)
		for i := b.Start; i < b.End; i++ {
			idx = append(idx, int32(i))
		}
	}
	for c, v := range b.Cols {
		fillColumn(backing[c:], width, v, idx)
	}
	return out
}

// fillColumn writes one output column into the strided backing cells
// dst[0], dst[width], dst[2*width], … reading vector rows idx in order.
func fillColumn(dst []value.Value, width int, v *Vector, idx []int32) {
	switch v.Kind {
	case value.KindInt:
		for j, r := range idx {
			if !v.Nulls.Get(int(r)) {
				dst[j*width].SetInt64(v.Ints[r])
			}
		}
	case value.KindBool:
		for j, r := range idx {
			if !v.Nulls.Get(int(r)) {
				dst[j*width].SetBool(v.Ints[r] != 0)
			}
		}
	case value.KindFloat:
		for j, r := range idx {
			if !v.Nulls.Get(int(r)) {
				dst[j*width].SetFloat64(v.Floats[r])
			}
		}
	case value.KindString:
		for j, r := range idx {
			if !v.Nulls.Get(int(r)) {
				dst[j*width].SetText(v.Dict[v.Codes[r]])
			}
		}
	default: // boxed
		for j, r := range idx {
			dst[j*width] = v.Vals[r]
		}
	}
}

// GroupOffsets returns the group-boundary offsets of rows ord[0..n)
// grouped by the given key columns: off[g] is the position in ord where
// group g starts, plus a final sentinel len(ord). Adjacent rows belong
// to the same group when every key column is KeyEqualAt — the same
// boundary test the row engine's KeyOn comparison performs on sorted
// input. An empty ord yields the single sentinel {0}.
func GroupOffsets(cols []*Vector, ord []int32, keyIdx []int) []int32 {
	if len(ord) == 0 {
		return []int32{0}
	}
	off := make([]int32, 0, 16)
	off = append(off, 0)
	for p := 1; p < len(ord); p++ {
		for _, k := range keyIdx {
			if !KeyEqualAt(cols[k], int(ord[p-1]), cols[k], int(ord[p])) {
				off = append(off, int32(p))
				break
			}
		}
	}
	return append(off, int32(len(ord)))
}
