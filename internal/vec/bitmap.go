// Package vec implements batch-at-a-time execution primitives: typed
// column vectors (int64 / float64 / dictionary string / bool) with NULL
// bitmaps, a Batch type carrying selection vectors and group-offset
// arrays, and the vectorized kernels — comparison predicates under 3VL
// and 2VL, key hashing, multi-key sorting and group-boundary detection —
// that the executor's batch operators are built from.
//
// Every kernel is written to be observationally identical to the row
// engine's tuple-at-a-time semantics: comparisons mirror value.Compare,
// grouping mirrors value.Identical, sort order mirrors the row engine's
// in-memory sort (value.Less with original-position tie-break), and key
// equality mirrors the canonical value.AppendKey encoding. Tuple-for-
// tuple parity with the row operators is the package's oracle; see
// docs/VECTORIZATION.md.
package vec

import (
	"math/bits"

	"nra/internal/value"
)

// Bitmap is a dense bitset over row positions: bit i lives in word i/64
// at bit i%64. The zero value of a word is all-clear; slack bits past
// the row count are kept zero by every constructor in this package.
type Bitmap []uint64

// NewBitmap returns an all-clear bitmap over n rows.
func NewBitmap(n int) Bitmap { return make(Bitmap, value.NullWords(n)) }

// Get reports bit i.
func (b Bitmap) Get(i int) bool { return b[i>>6]>>(uint(i)&63)&1 != 0 }

// Set sets bit i.
func (b Bitmap) Set(i int) { b[i>>6] |= 1 << (uint(i) & 63) }

// Clear clears bit i.
func (b Bitmap) Clear(i int) { b[i>>6] &^= 1 << (uint(i) & 63) }

// And intersects o into b word-wise.
func (b Bitmap) And(o Bitmap) {
	for w := range b {
		b[w] &= o[w]
	}
}

// Or unions o into b word-wise.
func (b Bitmap) Or(o Bitmap) {
	for w := range b {
		b[w] |= o[w]
	}
}

// AndNot clears every bit of b that is set in o.
func (b Bitmap) AndNot(o Bitmap) {
	for w := range b {
		b[w] &^= o[w]
	}
}

// Not returns the complement of b over n rows, with slack bits clear.
func (b Bitmap) Not(n int) Bitmap {
	r := NewBitmap(n)
	for w := range r {
		r[w] = ^b[w]
	}
	r.Mask(n)
	return r
}

// Mask clears the slack bits past row n in the final word.
func (b Bitmap) Mask(n int) {
	if rem := uint(n) & 63; rem != 0 && len(b) > 0 {
		b[len(b)-1] &= (1 << rem) - 1
	}
}

// Count returns the number of set bits.
func (b Bitmap) Count() int {
	c := 0
	for _, w := range b {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether any bit is set.
func (b Bitmap) Any() bool {
	for _, w := range b {
		if w != 0 {
			return true
		}
	}
	return false
}
