package vec

import "nra/internal/value"

// TriVec is the columnar three-valued truth vector: row i is True when
// bit i of True is set, Unknown when bit i of Unknown is set, and False
// otherwise. The two bitmaps are disjoint by construction.
type TriVec struct {
	// True holds the rows where the predicate is definitely true.
	True Bitmap
	// Unknown holds the rows where the predicate is SQL Unknown.
	Unknown Bitmap
}

// NewTriVec returns an all-False truth vector over n rows.
func NewTriVec(n int) TriVec {
	return TriVec{True: NewBitmap(n), Unknown: NewBitmap(n)}
}

// Get returns the truth value at row i.
func (t TriVec) Get(i int) value.Tri {
	if t.True.Get(i) {
		return value.True
	}
	if t.Unknown.Get(i) {
		return value.Unknown
	}
	return value.False
}

// And returns the Kleene conjunction over n rows: True when both True,
// False when either False, Unknown otherwise.
func (t TriVec) And(o TriVec, n int) TriVec {
	r := NewTriVec(n)
	for w := range r.True {
		aT, aU, bT, bU := t.True[w], t.Unknown[w], o.True[w], o.Unknown[w]
		aF, bF := ^(aT | aU), ^(bT | bU)
		r.True[w] = aT & bT
		r.Unknown[w] = (aU | bU) &^ (aF | bF)
	}
	return r
}

// Or returns the Kleene disjunction over n rows: True when either True,
// False when both False, Unknown otherwise.
func (t TriVec) Or(o TriVec, n int) TriVec {
	r := NewTriVec(n)
	for w := range r.True {
		aT, aU, bT, bU := t.True[w], t.Unknown[w], o.True[w], o.Unknown[w]
		r.True[w] = aT | bT
		r.Unknown[w] = (aU | bU) &^ (aT | bT)
	}
	return r
}

// Not returns the Kleene negation over n rows: True↔False, Unknown
// fixed.
func (t TriVec) Not(n int) TriVec {
	r := NewTriVec(n)
	for w := range r.True {
		r.True[w] = ^(t.True[w] | t.Unknown[w])
		r.Unknown[w] = t.Unknown[w]
	}
	r.True.Mask(n)
	return r
}

// Collapse2VL applies the Libkin two-valued collapse in place:
// Unknown → False.
func (t TriVec) Collapse2VL() {
	for w := range t.Unknown {
		t.Unknown[w] = 0
	}
}
