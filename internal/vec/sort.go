package vec

import (
	"math"
	"sort"

	"nra/internal/value"
)

// Three-way comparison outcomes of one key column.
const (
	cmpEqual   = 0  // value.Identical: fall through to the next key
	cmpLess    = -1 // value.Less(a, b): a sorts first
	cmpNotLess = 1  // decided, a does not sort first
)

// colCmp compares one key column between absolute rows a and b.
type colCmp func(a, b int32) int

// SortIdx returns the permutation ord of rows 0..n-1 that sorts the
// vectors by the given key columns, reproducing the row engine's
// in-memory sort order exactly: per key column value.Identical falls
// through and value.Less decides, with the original row position as the
// final tie-break (= stability).
func SortIdx(cols []*Vector, n int, keyIdx []int) []int32 {
	cmps := make([]colCmp, len(keyIdx))
	for i, k := range keyIdx {
		cmps[i] = makeColCmp(cols[k])
	}
	ord := make([]int32, n)
	for i := range ord {
		ord[i] = int32(i)
	}
	sort.Slice(ord, func(i, j int) bool {
		a, b := ord[i], ord[j]
		for _, c := range cmps {
			switch c(a, b) {
			case cmpLess:
				return true
			case cmpNotLess:
				return false
			}
		}
		return a < b
	})
	return ord
}

// makeColCmp compiles the Identical/Less comparison for one vector.
// NULL ordering matches value.Less: NULL (kind tag 0) sorts before
// every typed value.
func makeColCmp(v *Vector) colCmp {
	switch v.Kind {
	case value.KindInt, value.KindBool:
		data, nulls := v.Ints, v.Nulls
		return func(a, b int32) int {
			an, bn := nulls.Get(int(a)), nulls.Get(int(b))
			if an || bn {
				return nullCmp(an, bn)
			}
			x, y := data[a], data[b]
			if x == y {
				return cmpEqual
			}
			if x < y {
				return cmpLess
			}
			return cmpNotLess
		}
	case value.KindFloat:
		data, nulls := v.Floats, v.Nulls
		return func(a, b int32) int {
			an, bn := nulls.Get(int(a)), nulls.Get(int(b))
			if an || bn {
				return nullCmp(an, bn)
			}
			x, y := data[a], data[b]
			if x == y || (math.IsNaN(x) && math.IsNaN(y)) {
				return cmpEqual
			}
			if x < y {
				return cmpLess
			}
			return cmpNotLess
		}
	case value.KindString:
		// Rank the dictionary once so the n·log n comparisons are integer
		// compares instead of string compares: the dictionary is small
		// (unique values), the row count is not.
		codes, nulls := v.Codes, v.Nulls
		rank := dictRanks(v.Dict)
		return func(a, b int32) int {
			an, bn := nulls.Get(int(a)), nulls.Get(int(b))
			if an || bn {
				return nullCmp(an, bn)
			}
			ra, rb := rank[codes[a]], rank[codes[b]]
			if ra == rb {
				return cmpEqual
			}
			if ra < rb {
				return cmpLess
			}
			return cmpNotLess
		}
	default:
		return func(a, b int32) int {
			x, y := v.Value(int(a)), v.Value(int(b))
			if value.Identical(x, y) {
				return cmpEqual
			}
			if value.Less(x, y) {
				return cmpLess
			}
			return cmpNotLess
		}
	}
}

// dictRanks returns the sort rank of each dictionary code: equal strings
// (should the dictionary ever hold duplicates) share a rank, so rank
// comparison is exactly string comparison.
func dictRanks(dict []string) []int32 {
	byStr := make([]int32, len(dict))
	for i := range byStr {
		byStr[i] = int32(i)
	}
	sort.Slice(byStr, func(i, j int) bool { return dict[byStr[i]] < dict[byStr[j]] })
	rank := make([]int32, len(dict))
	r := int32(0)
	for i, c := range byStr {
		if i > 0 && dict[c] != dict[byStr[i-1]] {
			r++
		}
		rank[c] = r
	}
	return rank
}

// nullCmp resolves a comparison where at least one side is NULL, per
// value.Identical / value.Less (NULL first, NULLs identical).
func nullCmp(an, bn bool) int {
	switch {
	case an && bn:
		return cmpEqual
	case an:
		return cmpLess
	default:
		return cmpNotLess
	}
}
