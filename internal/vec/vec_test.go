package vec

import (
	"math/rand"
	"sort"
	"testing"

	"nra/internal/relation"
	"nra/internal/value"
)

// randTriVec fills a TriVec over n rows from the seeded source and
// returns the per-row truth values for reference computation.
func randTriVec(t *testing.T, rng *rand.Rand, n int) (TriVec, []value.Tri) {
	t.Helper()
	tv := NewTriVec(n)
	ref := make([]value.Tri, n)
	for i := 0; i < n; i++ {
		switch rng.Intn(3) {
		case 0:
			tv.True.Set(i)
			ref[i] = value.True
		case 1:
			tv.Unknown.Set(i)
			ref[i] = value.Unknown
		default:
			ref[i] = value.False
		}
	}
	return tv, ref
}

// TestTriVecKleene checks the word-parallel three-valued And/Or/Not
// against the scalar Kleene operators, on a length that is not a
// multiple of 64 so the tail masking is exercised.
func TestTriVecKleene(t *testing.T) {
	const n = 197
	rng := rand.New(rand.NewSource(1))
	a, aref := randTriVec(t, rng, n)
	b, bref := randTriVec(t, rng, n)
	and, or, not := a.And(b, n), a.Or(b, n), a.Not(n)
	for i := 0; i < n; i++ {
		if got, want := and.Get(i), aref[i].And(bref[i]); got != want {
			t.Fatalf("And row %d: got %v want %v (%v, %v)", i, got, want, aref[i], bref[i])
		}
		if got, want := or.Get(i), aref[i].Or(bref[i]); got != want {
			t.Fatalf("Or row %d: got %v want %v (%v, %v)", i, got, want, aref[i], bref[i])
		}
		if got, want := not.Get(i), aref[i].Not(); got != want {
			t.Fatalf("Not row %d: got %v want %v (%v)", i, got, want, aref[i])
		}
	}
	// Not must not set bits beyond row n-1: a second negation of an
	// all-False vector stays within the mask.
	if bits := NewTriVec(n).Not(n).True.Count(); bits != n {
		t.Fatalf("Not(all-False) has %d true bits, want %d", bits, n)
	}
	// The 2VL collapse erases exactly the Unknowns.
	a.Collapse2VL()
	for i := 0; i < n; i++ {
		want := aref[i]
		if want == value.Unknown {
			want = value.False
		}
		if got := a.Get(i); got != want {
			t.Fatalf("Collapse2VL row %d: got %v want %v", i, got, want)
		}
	}
}

// TestBitmapAlgebra checks the bitmap operations against a boolean-slice
// reference across a word boundary.
func TestBitmapAlgebra(t *testing.T) {
	const n = 131
	rng := rand.New(rand.NewSource(2))
	a, b := NewBitmap(n), NewBitmap(n)
	aref, bref := make([]bool, n), make([]bool, n)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 0 {
			a.Set(i)
			aref[i] = true
		}
		if rng.Intn(2) == 0 {
			b.Set(i)
			bref[i] = true
		}
	}
	check := func(op string, got Bitmap, want func(i int) bool) {
		t.Helper()
		count := 0
		for i := 0; i < n; i++ {
			w := want(i)
			if got.Get(i) != w {
				t.Fatalf("%s row %d: got %v want %v", op, i, got.Get(i), w)
			}
			if w {
				count++
			}
		}
		if got.Count() != count {
			t.Fatalf("%s Count: got %d want %d", op, got.Count(), count)
		}
		if got.Any() != (count > 0) {
			t.Fatalf("%s Any: got %v want %v", op, got.Any(), count > 0)
		}
	}
	and := append(Bitmap(nil), a...)
	and.And(b)
	check("And", and, func(i int) bool { return aref[i] && bref[i] })
	or := append(Bitmap(nil), a...)
	or.Or(b)
	check("Or", or, func(i int) bool { return aref[i] || bref[i] })
	andNot := append(Bitmap(nil), a...)
	andNot.AndNot(b)
	check("AndNot", andNot, func(i int) bool { return aref[i] && !bref[i] })
	check("Not", a.Not(n), func(i int) bool { return !aref[i] })
	// Not must mask the tail: no bits at or beyond n.
	if not := a.Not(n); not.Count() != n-a.Count() {
		t.Fatalf("Not leaks tail bits: %d + %d != %d", not.Count(), a.Count(), n)
	}
	a.Clear(5)
	if a.Get(5) {
		t.Fatal("Clear(5) left the bit set")
	}
}

// mixedRelation builds a flat relation exercising every column
// representation: typed int/float/string/bool columns with NULLs, a
// mixed-kind column (boxed fallback) and an all-NULL column.
func mixedRelation(n int) *relation.Relation {
	s := &relation.Schema{Name: "t", Cols: []relation.Column{
		{Name: "i"}, {Name: "f"}, {Name: "s"}, {Name: "b"}, {Name: "mixed"}, {Name: "nul"},
	}}
	rel := relation.New(s)
	words := []string{"ash", "birch", "cedar"}
	for r := 0; r < n; r++ {
		row := []value.Value{
			value.Int(int64(r % 7)),
			value.Float(float64(r) / 3),
			value.Str(words[r%len(words)]),
			value.Bool(r%2 == 0),
			value.Int(int64(r)),
			value.Null,
		}
		if r%5 == 0 {
			row[0] = value.Null
		}
		if r%4 == 0 {
			row[1] = value.Null
		}
		if r%6 == 0 {
			row[2] = value.Null
		}
		if r%3 == 0 {
			row[4] = value.Str("boxed") // mixed kinds: boxed column
		}
		rel.Append(relation.NewTuple(row...))
	}
	return rel
}

// TestBatchRoundTrip converts a relation to a batch and back and demands
// value-identical tuples, for the full window and for a selection
// vector.
func TestBatchRoundTrip(t *testing.T) {
	rel := mixedRelation(130)
	b, ok := FromRelation(rel)
	if !ok {
		t.Fatal("FromRelation failed on a flat relation")
	}
	checkRows := func(out *relation.Relation, rows []int) {
		t.Helper()
		if out.Len() != len(rows) {
			t.Fatalf("round trip: %d rows, want %d", out.Len(), len(rows))
		}
		for j, r := range rows {
			for c := range rel.Schema.Cols {
				got, want := out.Tuples[j].Atoms[c], rel.Tuples[r].Atoms[c]
				if !value.Identical(got, want) {
					t.Fatalf("row %d col %d: got %v want %v", r, c, got, want)
				}
			}
		}
	}
	all := make([]int, rel.Len())
	for i := range all {
		all[i] = i
	}
	checkRows(b.ToRelation(), all)

	// A selection vector narrows the materialized window, in order.
	sel := []int32{3, 4, 64, 65, 127}
	bSel := &Batch{Schema: b.Schema, Cols: b.Cols, Start: 0, End: rel.Len(), Sel: sel}
	if bSel.Rows() != len(sel) {
		t.Fatalf("Rows with Sel: got %d want %d", bSel.Rows(), len(sel))
	}
	checkRows(bSel.ToRelation(), []int{3, 4, 64, 65, 127})

	// An empty non-nil Sel means no rows — distinct from nil (all rows).
	bEmpty := &Batch{Schema: b.Schema, Cols: b.Cols, Start: 0, End: rel.Len(), Sel: []int32{}}
	checkRows(bEmpty.ToRelation(), nil)
}

// TestFromRelationColsPruning checks that pruned columns stay nil and
// the converted ones match FromRelation's.
func TestFromRelationColsPruning(t *testing.T) {
	rel := mixedRelation(70)
	needed := []bool{true, false, true, false, false, false}
	b, ok := FromRelationCols(rel, needed)
	if !ok {
		t.Fatal("FromRelationCols failed")
	}
	for c, v := range b.Cols {
		if needed[c] == (v == nil) {
			t.Fatalf("col %d: needed=%v but vector nil=%v", c, needed[c], v == nil)
		}
	}
	for r := 0; r < rel.Len(); r++ {
		for _, c := range []int{0, 2} {
			if !value.Identical(b.Cols[c].Value(r), rel.Tuples[r].Atoms[c]) {
				t.Fatalf("pruned conversion differs at row %d col %d", r, c)
			}
		}
	}
}

// TestGather checks the typed gather: values follow the index vector,
// -1 produces NULL (the outer-join padding row), and string gathers
// share the source dictionary.
func TestGather(t *testing.T) {
	rel := mixedRelation(50)
	b, _ := FromRelation(rel)
	idx := []int32{7, -1, 0, 49, 7, -1}
	for c := range b.Cols {
		g := Gather(b.Cols[c], idx)
		if g.Len() != len(idx) {
			t.Fatalf("col %d: gathered length %d, want %d", c, g.Len(), len(idx))
		}
		for j, r := range idx {
			want := value.Null
			if r >= 0 {
				want = b.Cols[c].Value(int(r))
			}
			if !value.Identical(g.Value(j), want) {
				t.Fatalf("col %d row %d: got %v want %v", c, j, g.Value(j), want)
			}
		}
	}
	sv, _ := FromRelation(rel)
	g := Gather(sv.Cols[2], idx)
	if len(g.Dict) != 0 && &g.Dict[0] != &sv.Cols[2].Dict[0] {
		t.Fatal("string gather copied the dictionary instead of sharing it")
	}
}

// TestSortIdxStable checks that SortIdx orders rows like the row
// engine's value comparison (NULLs first) and preserves input order
// within equal keys (stability), including string columns, whose
// comparisons go through dictionary ranks.
func TestSortIdxStable(t *testing.T) {
	rel := mixedRelation(120)
	b, _ := FromRelation(rel)
	keyIdx := []int{2, 0} // string then int, both with NULLs
	ord := SortIdx(b.Cols, b.End, keyIdx)
	if len(ord) != rel.Len() {
		t.Fatalf("ord has %d entries, want %d", len(ord), rel.Len())
	}
	want := make([]int32, rel.Len())
	for i := range want {
		want[i] = int32(i)
	}
	cmpVals := func(a, b value.Value) int {
		an, bn := a.IsNull(), b.IsNull()
		if an || bn {
			if an && bn {
				return 0
			}
			if an {
				return -1
			}
			return 1
		}
		c, _, err := value.Compare(a, b)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	sort.SliceStable(want, func(x, y int) bool {
		a, b := want[x], want[y]
		for _, k := range keyIdx {
			if c := cmpVals(rel.Tuples[a].Atoms[k], rel.Tuples[b].Atoms[k]); c != 0 {
				return c < 0
			}
		}
		return false
	})
	for i := range ord {
		if ord[i] != want[i] {
			t.Fatalf("position %d: got row %d, want row %d", i, ord[i], want[i])
		}
	}
}

// TestGroupOffsets checks the group-boundary invariants on sorted
// input: offsets start at 0, end at len(ord), strictly increase, rows
// within a group are key-equal and rows across a boundary are not.
// NULL keys form groups of their own (canonical key equality, not SQL
// equality).
func TestGroupOffsets(t *testing.T) {
	rel := mixedRelation(90)
	b, _ := FromRelation(rel)
	keyIdx := []int{0}
	ord := SortIdx(b.Cols, b.End, keyIdx)
	offs := GroupOffsets(b.Cols, ord, keyIdx)
	if offs[0] != 0 || offs[len(offs)-1] != int32(len(ord)) {
		t.Fatalf("offsets not bracketed: %v", offs)
	}
	keyEq := func(x, y int32) bool {
		return KeyEqualAt(b.Cols[0], int(x), b.Cols[0], int(y))
	}
	for g := 0; g+1 < len(offs); g++ {
		if offs[g+1] <= offs[g] {
			t.Fatalf("empty or reversed group %d: %v", g, offs)
		}
		for p := offs[g] + 1; p < offs[g+1]; p++ {
			if !keyEq(ord[p-1], ord[p]) {
				t.Fatalf("group %d rows %d and %d differ in key", g, ord[p-1], ord[p])
			}
		}
		if g > 0 && keyEq(ord[offs[g]-1], ord[offs[g]]) {
			t.Fatalf("boundary %d separates equal keys", g)
		}
	}
	// NULL keys must be one group: count distinct keys the same way.
	distinct := 1
	for p := 1; p < len(ord); p++ {
		if !keyEq(ord[p-1], ord[p]) {
			distinct++
		}
	}
	if got := len(offs) - 1; got != distinct {
		t.Fatalf("got %d groups, want %d", got, distinct)
	}
	if got := GroupOffsets(b.Cols, nil, keyIdx); len(got) != 1 || got[0] != 0 {
		t.Fatalf("empty ord: got %v, want [0]", got)
	}
}
