package relation

import (
	"strings"
	"testing"

	"nra/internal/value"
)

func flatSchema() *Schema {
	return NewSchema("R",
		Column{Name: "R.A", Type: TInt},
		Column{Name: "R.B", Type: TInt},
		Column{Name: "R.C", Type: TString},
	)
}

func TestSchemaDepth(t *testing.T) {
	s := flatSchema()
	if s.Depth() != 0 {
		t.Fatalf("flat schema depth = %d", s.Depth())
	}
	nested := &Schema{
		Name: "N",
		Cols: []Column{{Name: "N.X", Type: TInt}},
		Subs: []Sub{{Name: "g", Schema: flatSchema()}},
	}
	if nested.Depth() != 1 {
		t.Fatalf("one-level depth = %d", nested.Depth())
	}
	deep := &Schema{Name: "D", Subs: []Sub{{Name: "g", Schema: nested}}}
	if deep.Depth() != 2 {
		t.Fatalf("two-level depth = %d", deep.Depth())
	}
}

func TestColIndexQualifiedAndSuffix(t *testing.T) {
	s := flatSchema()
	if s.ColIndex("R.B") != 1 {
		t.Error("exact lookup failed")
	}
	if s.ColIndex("B") != 1 {
		t.Error("unqualified suffix lookup failed")
	}
	if s.ColIndex("nope") != -1 {
		t.Error("missing column should be -1")
	}
	amb := NewSchema("J",
		Column{Name: "R.K", Type: TInt},
		Column{Name: "S.K", Type: TInt},
	)
	if amb.ColIndex("K") != -1 {
		t.Error("ambiguous unqualified lookup must fail")
	}
	if amb.ColIndex("S.K") != 1 {
		t.Error("qualified lookup must disambiguate")
	}
}

func TestMustColIndexPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	flatSchema().MustColIndex("missing")
}

func TestSchemaCloneIndependent(t *testing.T) {
	s := flatSchema()
	c := s.Clone()
	c.Cols[0].Name = "R.Z"
	if s.Cols[0].Name != "R.A" {
		t.Fatal("Clone shares column storage")
	}
	if !s.Equal(s.Clone()) {
		t.Fatal("Clone not Equal to original")
	}
	if s.Equal(c) {
		t.Fatal("modified clone still Equal")
	}
}

func TestFromRowsTypesAndNulls(t *testing.T) {
	r := MustFromRows("R", []string{"R.A", "R.B"},
		[]any{1, "x"},
		[]any{nil, "y"},
		[]any{3, nil},
	)
	if r.Len() != 3 {
		t.Fatalf("len = %d", r.Len())
	}
	if r.Schema.Cols[0].Type != TInt || r.Schema.Cols[1].Type != TString {
		t.Fatalf("inferred types: %v %v", r.Schema.Cols[0].Type, r.Schema.Cols[1].Type)
	}
	if !r.Tuples[1].Atoms[0].IsNull() || !r.Tuples[2].Atoms[1].IsNull() {
		t.Fatal("nil should map to NULL")
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFromRowsErrors(t *testing.T) {
	if _, err := FromRows("R", []string{"a"}, []any{1, 2}); err == nil {
		t.Error("arity mismatch not detected")
	}
	if _, err := FromRows("R", []string{"a"}, []any{struct{}{}}); err == nil {
		t.Error("bad literal type not detected")
	}
}

func TestEqualSetOrderInsensitive(t *testing.T) {
	a := MustFromRows("R", []string{"x"}, []any{1}, []any{2}, []any{2})
	b := MustFromRows("R", []string{"x"}, []any{2}, []any{1}, []any{2})
	c := MustFromRows("R", []string{"x"}, []any{1}, []any{1}, []any{2})
	if !a.EqualSet(b) {
		t.Error("multiset equality should ignore order")
	}
	if a.EqualSet(c) {
		t.Error("different multiplicities must differ")
	}
	d := MustFromRows("R", []string{"x"}, []any{1}, []any{2})
	if a.EqualSet(d) {
		t.Error("different cardinalities must differ")
	}
}

func TestSortByNullsFirstAndStable(t *testing.T) {
	r := MustFromRows("R", []string{"a", "b"},
		[]any{3, 1}, []any{nil, 2}, []any{1, 3}, []any{3, 4},
	)
	r.SortBy("a")
	if !r.Tuples[0].Atoms[0].IsNull() {
		t.Fatal("NULL should sort first")
	}
	if r.Tuples[1].Atoms[0].Int64() != 1 {
		t.Fatal("sort order wrong")
	}
	// Stability: the two a=3 rows keep input order (b=1 then b=4).
	if r.Tuples[2].Atoms[1].Int64() != 1 || r.Tuples[3].Atoms[1].Int64() != 4 {
		t.Fatal("sort not stable")
	}
}

func TestTupleKeyOnGroupsNulls(t *testing.T) {
	t1 := NewTuple(value.Null, value.Int(1))
	t2 := NewTuple(value.Null, value.Int(1))
	t3 := NewTuple(value.Int(0), value.Int(1))
	if t1.KeyOn([]int{0, 1}) != t2.KeyOn([]int{0, 1}) {
		t.Error("NULL keys must group together")
	}
	if t1.KeyOn([]int{0, 1}) == t3.KeyOn([]int{0, 1}) {
		t.Error("NULL must not collide with 0")
	}
}

func TestNestedTupleKeyAndEqualSet(t *testing.T) {
	inner := MustFromRows("g", []string{"x"}, []any{1}, []any{2})
	inner2 := MustFromRows("g", []string{"x"}, []any{2}, []any{1}) // same set, different order
	s := &Schema{Name: "N", Cols: []Column{{Name: "k", Type: TInt}},
		Subs: []Sub{{Name: "g", Schema: inner.Schema}}}
	a := New(s)
	a.Append(Tuple{Atoms: []value.Value{value.Int(1)}, Groups: []*Relation{inner}})
	b := New(s)
	b.Append(Tuple{Atoms: []value.Value{value.Int(1)}, Groups: []*Relation{inner2}})
	if !a.EqualSet(b) {
		t.Fatal("nested groups must compare as sets")
	}
	empty := New(s)
	empty.Append(Tuple{Atoms: []value.Value{value.Int(1)}, Groups: []*Relation{nil}})
	if a.EqualSet(empty) {
		t.Fatal("empty group must differ from populated group")
	}
}

func TestValidateCatchesShapeErrors(t *testing.T) {
	r := New(flatSchema())
	r.Append(NewTuple(value.Int(1))) // wrong arity
	if err := r.Validate(); err == nil {
		t.Fatal("arity violation not detected")
	}
	s := &Schema{Name: "N", Cols: []Column{{Name: "k"}},
		Subs: []Sub{{Name: "g", Schema: flatSchema()}}}
	r2 := New(s)
	r2.Append(NewTuple(value.Int(1))) // missing group
	if err := r2.Validate(); err == nil {
		t.Fatal("missing group not detected")
	}
}

func TestStringRendering(t *testing.T) {
	r := MustFromRows("R", []string{"R.A", "R.B"}, []any{1, nil}, []any{22, "x"})
	out := r.String()
	for _, want := range []string{"A", "B", "null", "22", "x"} {
		if !strings.Contains(out, want) {
			t.Errorf("table rendering missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(flatSchema().String(), "R(R.A, R.B, R.C)") {
		t.Errorf("schema rendering: %s", flatSchema())
	}
}

func TestCloneDeep(t *testing.T) {
	inner := MustFromRows("g", []string{"x"}, []any{1})
	s := &Schema{Name: "N", Cols: []Column{{Name: "k", Type: TInt}},
		Subs: []Sub{{Name: "g", Schema: inner.Schema}}}
	r := New(s)
	r.Append(Tuple{Atoms: []value.Value{value.Int(9)}, Groups: []*Relation{inner}})
	c := r.Clone()
	c.Tuples[0].Groups[0].Tuples[0].Atoms[0] = value.Int(99)
	if inner.Tuples[0].Atoms[0].Int64() != 1 {
		t.Fatal("Clone shares nested group storage")
	}
}

func TestSortCanonicalDeterministic(t *testing.T) {
	a := MustFromRows("R", []string{"x"}, []any{3}, []any{1}, []any{2})
	b := MustFromRows("R", []string{"x"}, []any{2}, []any{3}, []any{1})
	a.SortCanonical()
	b.SortCanonical()
	for i := range a.Tuples {
		if !value.Identical(a.Tuples[i].Atoms[0], b.Tuples[i].Atoms[0]) {
			t.Fatal("canonical sort not deterministic")
		}
	}
}

func TestNestedGroupRendering(t *testing.T) {
	inner := MustFromRows("g", []string{"x", "y"}, []any{1, 2}, []any{3, nil})
	single := MustFromRows("h", []string{"z"}, []any{7})
	s := &Schema{Name: "N",
		Cols: []Column{{Name: "k", Type: TInt}},
		Subs: []Sub{{Name: "g", Schema: inner.Schema}, {Name: "h", Schema: single.Schema}}}
	r := New(s)
	r.Append(Tuple{Atoms: []value.Value{value.Int(1)},
		Groups: []*Relation{inner, single}})
	r.Append(Tuple{Atoms: []value.Value{value.Int(2)},
		Groups: []*Relation{nil, nil}}) // empty sets
	out := r.String()
	for _, want := range []string{"{(1,2), (3,null)}", "{7}", "{}"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
}
