package relation

import (
	"fmt"
	"strings"
)

// String renders the relation as an aligned text table, printing nested
// groups in braces the way the paper's Figure 2 draws them, e.g.
//
//	B  C  D  E  H  I  {J, L}
//	1  2  3  5  7  2  {(8,1), (6,3)}
func (r *Relation) String() string {
	headers := make([]string, 0, len(r.Schema.Cols)+len(r.Schema.Subs))
	for _, c := range r.Schema.Cols {
		headers = append(headers, shortName(c.Name))
	}
	for _, sub := range r.Schema.Subs {
		headers = append(headers, "{"+strings.Join(shortNames(sub.Schema), ", ")+"}")
	}

	rows := make([][]string, 0, len(r.Tuples))
	for _, t := range r.Tuples {
		row := make([]string, 0, len(headers))
		for _, v := range t.Atoms {
			row = append(row, v.String())
		}
		for _, g := range t.Groups {
			row = append(row, formatGroup(g))
		}
		rows = append(rows, row)
	}

	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}

	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	for _, row := range rows {
		writeRow(row)
	}
	return strings.TrimRight(b.String(), " \n") + "\n"
}

func formatGroup(g *Relation) string {
	if g == nil || len(g.Tuples) == 0 {
		return "{}"
	}
	parts := make([]string, len(g.Tuples))
	for i, t := range g.Tuples {
		cells := make([]string, 0, len(t.Atoms)+len(t.Groups))
		for _, v := range t.Atoms {
			cells = append(cells, v.String())
		}
		for _, sub := range t.Groups {
			cells = append(cells, formatGroup(sub))
		}
		if len(cells) == 1 {
			parts[i] = cells[0]
		} else {
			parts[i] = "(" + strings.Join(cells, ",") + ")"
		}
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

func shortName(qualified string) string {
	if i := strings.LastIndexByte(qualified, '.'); i >= 0 {
		return qualified[i+1:]
	}
	return qualified
}

func shortNames(s *Schema) []string {
	out := make([]string, 0, len(s.Cols))
	for _, c := range s.Cols {
		out = append(out, shortName(c.Name))
	}
	for _, sub := range s.Subs {
		out = append(out, fmt.Sprintf("{%s}", strings.Join(shortNames(sub.Schema), ", ")))
	}
	return out
}
