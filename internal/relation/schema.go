// Package relation implements the nested relational data model of
// Definitions 1 and 2 in Cao & Badia (SIGMOD 2005): a schema is a set of
// atomic attributes plus zero or more named subschemas, recursively; a
// relation is a finite set of tuples over such a schema, where a tuple
// assigns an atomic value to each atomic attribute and a (possibly empty)
// nested relation to each subschema.
//
// Following the paper's Definition 1, atomic attributes come first and
// subschemas after them; the implementation preserves that split, which
// keeps nest/unnest and the linking selection simple.
package relation

import (
	"fmt"
	"strings"
	"sync"

	"nra/internal/value"
)

// Type is the declared type of an atomic column.
type Type uint8

// Atomic column types. TAny is used for derived columns whose type is not
// statically known (e.g. literals flowing through projections).
const (
	TAny Type = iota
	TInt
	TFloat
	TString
	TBool
)

// String returns the SQL name of the type.
func (t Type) String() string {
	switch t {
	case TAny:
		return "ANY"
	case TInt:
		return "INTEGER"
	case TFloat:
		return "FLOAT"
	case TString:
		return "VARCHAR"
	case TBool:
		return "BOOLEAN"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Column describes one atomic attribute of a schema.
type Column struct {
	Name string // fully qualified, e.g. "R.B" or "lineitem.l_orderkey"
	Type Type
}

// Sub is a named subschema: a nested, set-valued attribute.
type Sub struct {
	Name   string // name of the nested attribute, e.g. "T" or "grp1"
	Schema *Schema
}

// Schema is a (possibly nested) relational schema. Schemas are treated
// as immutable after construction; the lazy name index is guarded so a
// schema may be shared by concurrent queries.
type Schema struct {
	Name string   // relation name; informational
	Cols []Column // atomic attributes A1..An
	Subs []Sub    // subschemas R1..Rm

	mu     sync.Mutex
	byName map[string]int // lazy index over Cols
}

// NewSchema builds a flat schema from column definitions.
func NewSchema(name string, cols ...Column) *Schema {
	return &Schema{Name: name, Cols: cols}
}

// Depth implements Definition 1: 0 for a flat schema, otherwise one more
// than the deepest subschema.
func (s *Schema) Depth() int {
	d := 0
	for _, sub := range s.Subs {
		if sd := sub.Schema.Depth() + 1; sd > d {
			d = sd
		}
	}
	return d
}

// ColIndex returns the position of the atomic column with the given name,
// or -1. Names are matched exactly first; if that fails, a unique
// unqualified suffix match (".name") is accepted.
func (s *Schema) ColIndex(name string) int {
	s.mu.Lock()
	if s.byName == nil {
		s.byName = make(map[string]int, len(s.Cols))
		for i, c := range s.Cols {
			s.byName[c.Name] = i
		}
	}
	i, ok := s.byName[name]
	s.mu.Unlock()
	if ok {
		return i
	}
	// Unqualified lookup: accept a unique suffix match.
	found := -1
	suffix := "." + name
	for i, c := range s.Cols {
		if strings.HasSuffix(c.Name, suffix) {
			if found >= 0 {
				return -1 // ambiguous
			}
			found = i
		}
	}
	return found
}

// SubIndex returns the position of the named subschema, or -1.
func (s *Schema) SubIndex(name string) int {
	for i, sub := range s.Subs {
		if sub.Name == name {
			return i
		}
	}
	return -1
}

// MustColIndex is ColIndex that panics on a missing column; used by
// operator constructors whose inputs were already validated.
func (s *Schema) MustColIndex(name string) int {
	i := s.ColIndex(name)
	if i < 0 {
		panic(fmt.Sprintf("relation: schema %s has no column %q", s.Name, name))
	}
	return i
}

// ColNames returns the names of all atomic columns, in order.
func (s *Schema) ColNames() []string {
	names := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		names[i] = c.Name
	}
	return names
}

// HasCol reports whether an atomic column resolves to name.
func (s *Schema) HasCol(name string) bool { return s.ColIndex(name) >= 0 }

// Clone returns a deep copy of the schema (shared nothing, so operators can
// rename columns without aliasing surprises).
func (s *Schema) Clone() *Schema {
	c := &Schema{Name: s.Name, Cols: append([]Column(nil), s.Cols...)}
	for _, sub := range s.Subs {
		c.Subs = append(c.Subs, Sub{Name: sub.Name, Schema: sub.Schema.Clone()})
	}
	return c
}

// Equal reports structural equality of two schemas (names, types, nesting).
func (s *Schema) Equal(o *Schema) bool {
	if len(s.Cols) != len(o.Cols) || len(s.Subs) != len(o.Subs) {
		return false
	}
	for i := range s.Cols {
		if s.Cols[i] != o.Cols[i] {
			return false
		}
	}
	for i := range s.Subs {
		if s.Subs[i].Name != o.Subs[i].Name || !s.Subs[i].Schema.Equal(o.Subs[i].Schema) {
			return false
		}
	}
	return true
}

// String renders the schema in the paper's notation,
// e.g. "R(A, B, C, D)" or "Temp2(B, C, D, E, H, I, (J, L))".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('(')
	for i, c := range s.Cols {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.Name)
	}
	for _, sub := range s.Subs {
		if len(s.Cols) > 0 {
			b.WriteString(", ")
		}
		inner := sub.Schema.String()
		// Strip the inner name to match the paper's "(J, L)" look.
		if i := strings.IndexByte(inner, '('); i >= 0 {
			inner = inner[i:]
		}
		b.WriteString(inner)
	}
	b.WriteByte(')')
	return b.String()
}

// typeOf maps a value kind to a column type.
func typeOf(v value.Value) Type {
	switch v.Kind() {
	case value.KindInt:
		return TInt
	case value.KindFloat:
		return TFloat
	case value.KindString:
		return TString
	case value.KindBool:
		return TBool
	default:
		return TAny
	}
}
