package relation

import (
	"fmt"
	"sort"

	"nra/internal/value"
)

// Tuple is a nested tuple: one atomic value per schema column and one
// nested relation per subschema. Groups[i] may be nil to denote the empty
// nested relation (operators normalise nil and empty identically).
type Tuple struct {
	Atoms  []value.Value
	Groups []*Relation
}

// NewTuple builds a flat tuple from values.
func NewTuple(vs ...value.Value) Tuple { return Tuple{Atoms: vs} }

// Clone returns a deep copy of the tuple. Atomic values are immutable and
// shared; group relations are copied recursively.
func (t Tuple) Clone() Tuple {
	c := Tuple{Atoms: append([]value.Value(nil), t.Atoms...)}
	if t.Groups != nil {
		c.Groups = make([]*Relation, len(t.Groups))
		for i, g := range t.Groups {
			if g != nil {
				c.Groups[i] = g.Clone()
			}
		}
	}
	return c
}

// Relation is a nested relation: a schema plus a multiset of tuples. The
// formal model is a set; physical operators may carry duplicates internally
// and the algebra offers Distinct where set semantics are required (SQL
// itself is multiset-based, matching the paper's experiments).
type Relation struct {
	Schema *Schema
	Tuples []Tuple
}

// New returns an empty relation over the given schema.
func New(s *Schema) *Relation { return &Relation{Schema: s} }

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.Tuples) }

// Append adds tuples to the relation.
func (r *Relation) Append(ts ...Tuple) { r.Tuples = append(r.Tuples, ts...) }

// Clone returns a deep copy.
func (r *Relation) Clone() *Relation {
	c := &Relation{Schema: r.Schema.Clone(), Tuples: make([]Tuple, len(r.Tuples))}
	for i, t := range r.Tuples {
		c.Tuples[i] = t.Clone()
	}
	return c
}

// Col returns the values of one atomic column.
func (r *Relation) Col(name string) []value.Value {
	i := r.Schema.MustColIndex(name)
	out := make([]value.Value, len(r.Tuples))
	for j, t := range r.Tuples {
		out[j] = t.Atoms[i]
	}
	return out
}

// key encodes the full tuple (recursively, groups included after
// canonical sorting) into dst. Two tuples encode identically iff they are
// identical under grouping semantics.
func (t Tuple) key(dst []byte) []byte {
	for _, v := range t.Atoms {
		dst = v.AppendKey(dst)
	}
	for _, g := range t.Groups {
		dst = append(dst, '{')
		if g != nil {
			keys := make([]string, len(g.Tuples))
			for i, gt := range g.Tuples {
				keys[i] = string(gt.key(nil))
			}
			sort.Strings(keys)
			for _, k := range keys {
				// Length-prefix each member key so payload bytes can
				// never be mistaken for separators.
				n := len(k)
				dst = append(dst,
					byte(n>>24), byte(n>>16), byte(n>>8), byte(n))
				dst = append(dst, k...)
			}
		}
		dst = append(dst, '}')
	}
	return dst
}

// Key returns a canonical string key for the whole tuple (used for
// set-equality testing and duplicate elimination).
func (t Tuple) Key() string { return string(t.key(nil)) }

// KeyOn returns a canonical key for a subset of atomic columns, given by
// index. It is the grouping key used by nest and hash joins.
func (t Tuple) KeyOn(cols []int) string {
	var dst []byte
	for _, i := range cols {
		dst = t.Atoms[i].AppendKey(dst)
	}
	return string(dst)
}

// EqualSet reports whether two relations contain the same multiset of
// tuples (order-insensitive, nested groups compared as sets). Schemas must
// already be known compatible; only tuple contents are compared.
func (r *Relation) EqualSet(o *Relation) bool {
	if len(r.Tuples) != len(o.Tuples) {
		return false
	}
	counts := make(map[string]int, len(r.Tuples))
	for _, t := range r.Tuples {
		counts[t.Key()]++
	}
	for _, t := range o.Tuples {
		k := t.Key()
		counts[k]--
		if counts[k] < 0 {
			return false
		}
	}
	return true
}

// SortCanonical orders tuples by their canonical key, recursively sorting
// nested groups first. It makes output deterministic for golden tests.
func (r *Relation) SortCanonical() {
	for i := range r.Tuples {
		for _, g := range r.Tuples[i].Groups {
			if g != nil {
				g.SortCanonical()
			}
		}
	}
	sort.SliceStable(r.Tuples, func(i, j int) bool {
		return r.Tuples[i].Key() < r.Tuples[j].Key()
	})
}

// SortBy orders tuples by the named atomic columns using the total order
// value.Less (NULLs first). It is the physical reordering behind sort-based
// nest.
func (r *Relation) SortBy(cols ...string) {
	idx := make([]int, len(cols))
	for i, c := range cols {
		idx[i] = r.Schema.MustColIndex(c)
	}
	sort.SliceStable(r.Tuples, func(a, b int) bool {
		ta, tb := r.Tuples[a], r.Tuples[b]
		for _, i := range idx {
			va, vb := ta.Atoms[i], tb.Atoms[i]
			if !value.Identical(va, vb) {
				return value.Less(va, vb)
			}
		}
		return false
	})
}

// Validate checks that every tuple matches the schema shape (arity of
// atoms and groups, recursively). It returns the first violation found.
func (r *Relation) Validate() error {
	for i, t := range r.Tuples {
		if len(t.Atoms) != len(r.Schema.Cols) {
			return fmt.Errorf("relation %s: tuple %d has %d atoms, schema has %d columns",
				r.Schema.Name, i, len(t.Atoms), len(r.Schema.Cols))
		}
		if len(t.Groups) != len(r.Schema.Subs) {
			return fmt.Errorf("relation %s: tuple %d has %d groups, schema has %d subschemas",
				r.Schema.Name, i, len(t.Groups), len(r.Schema.Subs))
		}
		for j, g := range t.Groups {
			if g == nil {
				continue
			}
			if err := g.Validate(); err != nil {
				return fmt.Errorf("relation %s tuple %d group %s: %w",
					r.Schema.Name, i, r.Schema.Subs[j].Name, err)
			}
		}
	}
	return nil
}
