package relation

import (
	"fmt"

	"nra/internal/value"
)

// FromRows builds a flat relation from Go literals, inferring column types
// from the first non-nil value seen in each column. Supported cell types:
// int, int64, float64, string, bool, and nil for NULL. It is the test- and
// example-friendly constructor used throughout the repository to transcribe
// the paper's figures.
func FromRows(name string, cols []string, rows ...[]any) (*Relation, error) {
	s := &Schema{Name: name}
	for _, c := range cols {
		s.Cols = append(s.Cols, Column{Name: c, Type: TAny})
	}
	r := New(s)
	for ri, row := range rows {
		if len(row) != len(cols) {
			return nil, fmt.Errorf("relation %s: row %d has %d cells, want %d", name, ri, len(row), len(cols))
		}
		t := Tuple{Atoms: make([]value.Value, len(row))}
		for ci, cell := range row {
			v, err := ToValue(cell)
			if err != nil {
				return nil, fmt.Errorf("relation %s row %d col %s: %w", name, ri, cols[ci], err)
			}
			t.Atoms[ci] = v
			if s.Cols[ci].Type == TAny && !v.IsNull() {
				s.Cols[ci].Type = typeOf(v)
			}
		}
		r.Append(t)
	}
	return r, nil
}

// MustFromRows is FromRows that panics on error; for tests and examples.
func MustFromRows(name string, cols []string, rows ...[]any) *Relation {
	r, err := FromRows(name, cols, rows...)
	if err != nil {
		panic(err)
	}
	return r
}

// ToValue converts a Go literal to a Value. nil maps to NULL.
func ToValue(cell any) (value.Value, error) {
	switch x := cell.(type) {
	case nil:
		return value.Null, nil
	case int:
		return value.Int(int64(x)), nil
	case int64:
		return value.Int(x), nil
	case float64:
		return value.Float(x), nil
	case string:
		return value.Str(x), nil
	case bool:
		return value.Bool(x), nil
	case value.Value:
		return x, nil
	default:
		return value.Null, fmt.Errorf("unsupported literal type %T", cell)
	}
}
