// Package csvio persists a catalog to a directory of CSV files plus a
// JSON manifest (schema, primary keys, NOT NULL constraints, indexes),
// and loads it back. NULL is encoded as `\N` and string cells beginning
// with a backslash get one extra leading backslash, so every value —
// including empty strings and literal `\N` text — survives a round trip.
// Non-string values render via their SQL text form and parse back under
// the manifest's column types.
package csvio

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"nra/internal/catalog"
	"nra/internal/relation"
	"nra/internal/stats"
	"nra/internal/value"
)

const (
	manifestName = "catalog.json"
	nullToken    = `\N`
)

// Manifest describes the saved database.
type Manifest struct {
	Tables []TableMeta `json:"tables"`
}

// TableMeta is one table's schema and constraints. Stats carries the
// table's last ANALYZE result (fresh statistics only — stale ones are
// not persisted), so a reloaded session plans cost-based immediately.
type TableMeta struct {
	Name    string           `json:"name"`
	PK      string           `json:"pk"`
	Columns []ColumnMeta     `json:"columns"`
	NotNull []string         `json:"not_null,omitempty"`
	Indexes [][]string       `json:"indexes,omitempty"`
	Stats   *stats.TableJSON `json:"stats,omitempty"`
}

// ColumnMeta is one column's name and declared type.
type ColumnMeta struct {
	Name string `json:"name"`
	Type string `json:"type"` // INTEGER | FLOAT | VARCHAR | BOOLEAN | ANY
}

// Save writes the catalog into dir (created if missing). When tables is
// non-empty, only the named tables are written.
func Save(cat *catalog.Catalog, dir string, tables ...string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	want := map[string]bool{}
	for _, t := range tables {
		want[t] = true
	}
	var man Manifest
	for _, name := range cat.Names() {
		if len(want) > 0 && !want[name] {
			continue
		}
		tbl, err := cat.Table(name)
		if err != nil {
			return err
		}
		meta := TableMeta{Name: name, PK: unqualify(tbl.PK)}
		for _, c := range tbl.Rel.Schema.Cols {
			meta.Columns = append(meta.Columns, ColumnMeta{Name: unqualify(c.Name), Type: c.Type.String()})
		}
		for col, nn := range tbl.NotNull {
			if nn && unqualify(col) != meta.PK {
				meta.NotNull = append(meta.NotNull, unqualify(col))
			}
		}
		sort.Strings(meta.NotNull)
		for _, idx := range tbl.Indexes() {
			cols := make([]string, len(idx))
			for i, c := range idx {
				cols[i] = unqualify(c)
			}
			if len(cols) == 1 && cols[0] == meta.PK {
				continue // recreated automatically
			}
			meta.Indexes = append(meta.Indexes, cols)
		}
		if ts := tbl.Stats(); ts != nil {
			meta.Stats = ts.ToJSON()
		}
		man.Tables = append(man.Tables, meta)
		if err := saveTable(filepath.Join(dir, name+".csv"), tbl.Rel); err != nil {
			return err
		}
	}
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, manifestName), data, 0o644)
}

func saveTable(path string, rel *relation.Relation) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	// The OS may defer write failures (full disk, quota) to close; a
	// dropped close error would report a truncated file as saved.
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	w := csv.NewWriter(f)
	header := make([]string, len(rel.Schema.Cols))
	for i, c := range rel.Schema.Cols {
		header[i] = unqualify(c.Name)
	}
	if err := w.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	for _, t := range rel.Tuples {
		for i, v := range t.Atoms {
			switch {
			case v.IsNull():
				row[i] = nullToken
			case v.Kind() == value.KindString && strings.HasPrefix(v.Text(), `\`):
				row[i] = `\` + v.Text() // escape: decoded by stripping one backslash
			default:
				row[i] = v.String()
			}
		}
		if err := w.Write(row); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

// Load reads a directory written by Save into a fresh catalog.
func Load(dir string) (*catalog.Catalog, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("csvio: %w", err)
	}
	var man Manifest
	if err := json.Unmarshal(data, &man); err != nil {
		return nil, fmt.Errorf("csvio: bad manifest: %w", err)
	}
	cat := catalog.New()
	for _, meta := range man.Tables {
		rel, err := loadTable(filepath.Join(dir, meta.Name+".csv"), meta)
		if err != nil {
			return nil, err
		}
		tbl, err := cat.Create(meta.Name, rel, meta.PK)
		if err != nil {
			return nil, err
		}
		for _, col := range meta.NotNull {
			if err := tbl.SetNotNull(col); err != nil {
				return nil, err
			}
		}
		for _, idx := range meta.Indexes {
			if _, err := tbl.CreateIndex(idx...); err != nil {
				return nil, err
			}
		}
		// Reattach persisted statistics, but only when they still describe
		// the data (a hand-edited CSV must not resurrect wrong row counts).
		if meta.Stats != nil && meta.Stats.Rows == rel.Len() {
			ts, err := stats.FromJSON(meta.Stats)
			if err != nil {
				return nil, fmt.Errorf("csvio: table %s: %w", meta.Name, err)
			}
			tbl.SetStats(ts)
		}
	}
	return cat, nil
}

func loadTable(path string, meta TableMeta) (*relation.Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r := csv.NewReader(f)
	records, err := r.ReadAll()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, fmt.Errorf("csvio: %s: %w", path, err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("csvio: %s: missing header", path)
	}
	header := records[0]
	if len(header) != len(meta.Columns) {
		return nil, fmt.Errorf("csvio: %s: header has %d columns, manifest %d", path, len(header), len(meta.Columns))
	}
	schema := &relation.Schema{Name: meta.Name}
	types := make([]relation.Type, len(meta.Columns))
	for i, c := range meta.Columns {
		if header[i] != c.Name {
			return nil, fmt.Errorf("csvio: %s: column %d is %q, manifest says %q", path, i, header[i], c.Name)
		}
		types[i] = typeByName(c.Type)
		schema.Cols = append(schema.Cols, relation.Column{Name: c.Name, Type: types[i]})
	}
	rel := relation.New(schema)
	for ri, rec := range records[1:] {
		if len(rec) != len(types) {
			return nil, fmt.Errorf("csvio: %s row %d: %d cells, want %d", path, ri+1, len(rec), len(types))
		}
		tup := relation.Tuple{Atoms: make([]value.Value, len(types))}
		for ci, cell := range rec {
			v, err := parseCell(cell, types[ci])
			if err != nil {
				return nil, fmt.Errorf("csvio: %s row %d col %s: %w", path, ri+1, meta.Columns[ci].Name, err)
			}
			tup.Atoms[ci] = v
		}
		rel.Append(tup)
	}
	return rel, nil
}

func parseCell(cell string, t relation.Type) (value.Value, error) {
	if cell == nullToken {
		return value.Null, nil
	}
	if strings.HasPrefix(cell, `\`) {
		cell = cell[1:] // unescape a literal leading backslash
	}
	switch t {
	case relation.TInt:
		i, err := strconv.ParseInt(cell, 10, 64)
		if err != nil {
			return value.Null, err
		}
		return value.Int(i), nil
	case relation.TFloat:
		f, err := strconv.ParseFloat(cell, 64)
		if err != nil {
			return value.Null, err
		}
		return value.Float(f), nil
	case relation.TBool:
		switch cell {
		case "true":
			return value.Bool(true), nil
		case "false":
			return value.Bool(false), nil
		}
		return value.Null, fmt.Errorf("bad boolean %q", cell)
	default: // VARCHAR / ANY
		return value.Str(cell), nil
	}
}

func typeByName(name string) relation.Type {
	switch name {
	case "INTEGER":
		return relation.TInt
	case "FLOAT":
		return relation.TFloat
	case "VARCHAR":
		return relation.TString
	case "BOOLEAN":
		return relation.TBool
	default:
		return relation.TAny
	}
}

func unqualify(name string) string {
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '.' {
			return name[i+1:]
		}
	}
	return name
}
