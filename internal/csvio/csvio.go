// Package csvio persists a catalog to a directory of data files plus a
// JSON manifest (schema, primary keys, NOT NULL constraints, indexes),
// and loads it back. Despite the historical package name it writes two
// formats, selected per save and recorded per table in the manifest:
//
//   - Columnar segments (`<table>.<gen>.seg`, internal/colstore) — the
//     default, native format: per-column encodings, row-group zone maps
//     and a checksummed footer, loaded by binary decode and attached to
//     each table as its lazy column store (see docs/STORAGE.md).
//   - CSV (`<table>.<gen>.csv`) — the import/export path. NULL is
//     encoded as `\N` and string cells beginning with a backslash get
//     one extra leading backslash, so every value — including empty
//     strings and literal `\N` text — survives a round trip. Non-string
//     values render via their SQL text form and parse back under the
//     manifest's column types.
//
// A directory may mix formats table-by-table (e.g. after a partial CSV
// export into a columnar directory); Load dispatches on each manifest
// entry's format field, so migration in either direction is just a
// re-save.
//
// Crash consistency — identical for both formats. A save never
// overwrites live data in place:
//
//  1. Each table's rows are written to a fresh generation-named file
//     via temp file + fsync + rename, so no file a manifest references
//     is ever half-written.
//  2. The manifest — which names the exact files and their CRC32 —
//     is itself written via temp file + fsync + rename. That rename is
//     the commit point: before it, a reader (or a reboot) sees the old
//     manifest and the old generation's files intact; after it, the new.
//  3. Only after the commit point are the previous generation's files
//     deleted. A crash anywhere leaves either the old state or the new
//     state plus, at worst, orphan files that Load sweeps.
//
// The manifest's checkpoint number also fences the write-ahead log (see
// internal/wal): WAL records stamped with an older checkpoint are
// ignored on replay, so a crash between "manifest committed" and "WAL
// truncated" cannot re-apply already-persisted mutations.
package csvio

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"nra/internal/catalog"
	"nra/internal/colstore"
	"nra/internal/relation"
	"nra/internal/stats"
	"nra/internal/value"
	"nra/internal/vfs"
)

const (
	manifestName = "catalog.json"
	nullToken    = `\N`
)

// Format selects the on-disk representation of table data files.
type Format int

const (
	// FormatColumnar writes binary columnar segments (internal/colstore)
	// — the native format and the default for every save.
	FormatColumnar Format = iota
	// FormatCSV writes generation-named CSV files — the import/export
	// path, kept for interoperability.
	FormatCSV
)

// String returns the format's name as used on CLI flags.
func (f Format) String() string {
	if f == FormatCSV {
		return "csv"
	}
	return "columnar"
}

// ParseFormat maps a CLI flag value to a Format.
func ParseFormat(s string) (Format, error) {
	switch s {
	case "columnar", "colseg", "segment":
		return FormatColumnar, nil
	case "csv":
		return FormatCSV, nil
	}
	return FormatColumnar, fmt.Errorf("csvio: unknown storage format %q (want columnar or csv)", s)
}

// formatTag is the manifest marker for columnar tables; CSV entries
// leave the field empty so pre-columnar manifests load unchanged.
const formatTag = "colseg"

// WALName is the file name of the DML journal kept next to the manifest
// by durable sessions (internal/wal writes it; csvio only needs to know
// it exists to refuse unsafe partial saves and spare it from sweeps).
const WALName = "wal.jsonl"

// Manifest describes the saved database. Checkpoint is the save
// generation: it names the CSV files of this generation and fences WAL
// replay (only records stamped with this checkpoint apply).
type Manifest struct {
	Checkpoint uint64      `json:"checkpoint"`
	Tables     []TableMeta `json:"tables"`
}

// TableMeta is one table's schema and constraints. Stats carries the
// table's last ANALYZE result (fresh statistics only — stale ones are
// not persisted), so a reloaded session plans cost-based immediately.
// File is the rows' CSV file within the directory and CRC its CRC32
// (IEEE) — Load refuses a file whose bytes don't match, so a torn or
// tampered data file can never silently load.
type TableMeta struct {
	Name    string           `json:"name"`
	PK      string           `json:"pk"`
	File    string           `json:"file,omitempty"`
	CRC     string           `json:"crc,omitempty"`
	Format  string           `json:"format,omitempty"` // "" = CSV, "colseg" = columnar segment
	Columns []ColumnMeta     `json:"columns"`
	NotNull []string         `json:"not_null,omitempty"`
	Indexes [][]string       `json:"indexes,omitempty"`
	Stats   *stats.TableJSON `json:"stats,omitempty"`
}

// ColumnMeta is one column's name and declared type.
type ColumnMeta struct {
	Name string `json:"name"`
	Type string `json:"type"` // INTEGER | FLOAT | VARCHAR | BOOLEAN | ANY
}

// Save writes the catalog's current snapshot into dir (created if
// missing) in the native columnar format. When tables is non-empty,
// only the named tables are written; see SaveFS for the exact
// semantics.
func Save(cat *catalog.Catalog, dir string, tables ...string) error {
	_, err := SaveFS(vfs.OS, cat.Snapshot(), dir, tables...)
	return err
}

// SaveCSV is Save in CSV format — the export path for directories that
// other tools should read.
func SaveCSV(cat *catalog.Catalog, dir string, tables ...string) error {
	_, err := SaveFSAs(vfs.OS, cat.Snapshot(), dir, FormatCSV, tables...)
	return err
}

// SaveFS atomically writes snap into dir through fs in the native
// columnar format and returns the new checkpoint number. A full save
// (no table filter) replaces the directory's contents as one commit. A
// partial save writes only the named tables but preserves every other
// table already saved there — the merged manifest keeps their entries
// and files untouched; it is an export convenience and therefore
// refuses to run in a directory with a live WAL, where dropping the
// journal's tables from the commit would corrupt recovery.
func SaveFS(fs vfs.FS, snap *catalog.Snapshot, dir string, tables ...string) (uint64, error) {
	return SaveFSAs(fs, snap, dir, FormatColumnar, tables...)
}

// SaveFSAs is SaveFS with an explicit data-file format. Both formats
// share the same commit protocol — generation-named data files, then
// the manifest rename as the commit point, then orphan sweep — so
// crash-consistency guarantees do not depend on the format chosen.
func SaveFSAs(fs vfs.FS, snap *catalog.Snapshot, dir string, format Format, tables ...string) (uint64, error) {
	if err := fs.MkdirAll(dir); err != nil {
		return 0, err
	}
	prev, err := readManifest(fs, dir) // nil when absent
	if err != nil {
		return 0, fmt.Errorf("csvio: pre-save manifest: %w", err)
	}
	partial := len(tables) > 0
	if partial && fs.Exists(filepath.Join(dir, WALName)) {
		return 0, fmt.Errorf("csvio: partial save into %s: directory has a write-ahead log; save all tables", dir)
	}

	var man Manifest
	man.Checkpoint = 1
	if prev != nil {
		man.Checkpoint = prev.Checkpoint + 1
	}
	want := map[string]bool{}
	for _, t := range tables {
		if _, err := snap.Table(t); err != nil {
			return 0, err
		}
		want[t] = true
	}
	written := map[string]bool{}
	for _, name := range snap.Names() {
		if partial && !want[name] {
			continue
		}
		tbl, err := snap.Table(name)
		if err != nil {
			return 0, err
		}
		meta, err := writeTable(fs, dir, tbl, man.Checkpoint, format)
		if err != nil {
			return 0, err
		}
		man.Tables = append(man.Tables, meta)
		written[name] = true
	}
	// A partial save carries forward the untouched tables of the previous
	// manifest so it can never orphan or clobber them.
	if partial && prev != nil {
		for _, meta := range prev.Tables {
			if !written[meta.Name] {
				man.Tables = append(man.Tables, meta)
			}
		}
		sort.Slice(man.Tables, func(i, j int) bool { return man.Tables[i].Name < man.Tables[j].Name })
	}

	// Commit point: the manifest rename. Everything before it is invisible
	// to Load; everything after it is garbage collection.
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return 0, err
	}
	if err := atomicWrite(fs, dir, manifestName, data); err != nil {
		return 0, err
	}
	sweepOrphans(fs, dir, &man)
	return man.Checkpoint, nil
}

// writeTable persists one table version as `<name>.<gen>.seg` (or
// `.csv`) via temp file + fsync + rename and returns its manifest
// entry. The manifest CRC covers the whole data file in either format;
// columnar segments additionally carry their own footer checksum, so a
// torn segment is caught twice.
func writeTable(fs vfs.FS, dir string, tbl *catalog.Table, gen uint64, format Format) (TableMeta, error) {
	meta := TableMeta{Name: tbl.Name, PK: unqualify(tbl.PK)}
	for _, c := range tbl.Rel.Schema.Cols {
		meta.Columns = append(meta.Columns, ColumnMeta{Name: unqualify(c.Name), Type: c.Type.String()})
	}
	for col, nn := range tbl.NotNull {
		if nn && unqualify(col) != meta.PK {
			meta.NotNull = append(meta.NotNull, unqualify(col))
		}
	}
	sort.Strings(meta.NotNull)
	for _, idx := range tbl.Indexes() {
		cols := make([]string, len(idx))
		for i, c := range idx {
			cols[i] = unqualify(c)
		}
		if len(cols) == 1 && cols[0] == meta.PK {
			continue // recreated automatically
		}
		meta.Indexes = append(meta.Indexes, cols)
	}
	if ts := tbl.Stats(); ts != nil {
		meta.Stats = ts.ToJSON()
	}

	var data []byte
	if format == FormatColumnar {
		seg, err := colstore.Write(tbl.Rel, colstore.WriteOptions{})
		if err != nil {
			return meta, fmt.Errorf("csvio: table %s: %w", tbl.Name, err)
		}
		data = seg
		meta.File = fmt.Sprintf("%s.%d.seg", tbl.Name, gen)
		meta.Format = formatTag
	} else {
		var buf bytes.Buffer
		if err := encodeCSV(&buf, tbl.Rel); err != nil {
			return meta, err
		}
		data = buf.Bytes()
		meta.File = fmt.Sprintf("%s.%d.csv", tbl.Name, gen)
	}
	meta.CRC = fmt.Sprintf("%08x", crc32.ChecksumIEEE(data))
	if err := atomicWrite(fs, dir, meta.File, data); err != nil {
		return meta, err
	}
	return meta, nil
}

// atomicWrite lands data at dir/name via temp file + fsync + rename +
// directory sync, so the file is either absent (old content, for the
// manifest) or complete — never torn.
func atomicWrite(fs vfs.FS, dir, name string, data []byte) error {
	tmp := filepath.Join(dir, name+".tmp")
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fs.Rename(tmp, filepath.Join(dir, name)); err != nil {
		return err
	}
	return fs.SyncDir(dir)
}

// genFile matches generation-named data artifacts (`name.<gen>.seg` and
// `name.<gen>.csv`).
var genFile = regexp.MustCompile(`\.[0-9]+\.(csv|seg)$`)

// sweepOrphans removes save artifacts the manifest no longer references:
// temp files and superseded data-file generations of either format. It
// runs after the commit point, so failures here can only leave extra
// files, never lose data; Load performs the same sweep to converge
// after a crash.
func sweepOrphans(fs vfs.FS, dir string, man *Manifest) {
	live := map[string]bool{manifestName: true, WALName: true}
	for _, meta := range man.Tables {
		live[meta.dataFile()] = true
	}
	names, err := fs.ReadDirNames(dir)
	if err != nil {
		return
	}
	for _, n := range names {
		if live[n] {
			continue
		}
		if strings.HasSuffix(n, ".tmp") || genFile.MatchString(n) {
			fs.Remove(filepath.Join(dir, n))
		}
	}
}

// dataFile returns the manifest entry's data file, defaulting to the
// pre-generation layout (`<name>.csv`) for manifests written before
// checkpointing existed.
func (m *TableMeta) dataFile() string {
	if m.File != "" {
		return m.File
	}
	return m.Name + ".csv"
}

// columnar reports whether the entry's data file is a columnar segment.
func (m *TableMeta) columnar() bool { return m.Format == formatTag }

func encodeCSV(buf *bytes.Buffer, rel *relation.Relation) error {
	w := csv.NewWriter(buf)
	header := make([]string, len(rel.Schema.Cols))
	for i, c := range rel.Schema.Cols {
		header[i] = unqualify(c.Name)
	}
	if err := w.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	for _, t := range rel.Tuples {
		for i, v := range t.Atoms {
			switch {
			case v.IsNull():
				row[i] = nullToken
			case v.Kind() == value.KindString && strings.HasPrefix(v.Text(), `\`):
				row[i] = `\` + v.Text() // escape: decoded by stripping one backslash
			default:
				row[i] = v.String()
			}
		}
		if err := w.Write(row); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

// Load reads a directory written by Save into a fresh catalog.
func Load(dir string) (*catalog.Catalog, error) {
	cat, _, err := LoadFS(vfs.OS, dir)
	return cat, err
}

// LoadFS reads a directory written by SaveFS through fs, returning the
// catalog and the manifest's checkpoint number (for WAL replay). It
// verifies every data file against the manifest's CRC and sweeps
// leftover artifacts of an interrupted save, so recovery converges to
// exactly the last committed state.
func LoadFS(fs vfs.FS, dir string) (*catalog.Catalog, uint64, error) {
	man, err := readManifest(fs, dir)
	if err != nil {
		return nil, 0, err
	}
	if man == nil {
		return nil, 0, fmt.Errorf("csvio: %s: no manifest %s", dir, manifestName)
	}
	sweepOrphans(fs, dir, man)
	cat := catalog.New()
	for _, meta := range man.Tables {
		rel, segs, err := loadTable(fs, dir, meta)
		if err != nil {
			return nil, 0, err
		}
		// A CRC-bearing entry provably round-trips bytes Save wrote from
		// a catalog that already enforced the PK contract, so the load
		// skips re-validation and defers index builds to first use —
		// cold start pays only for parsing/decoding. Legacy entries
		// without a CRC get the full eager validation.
		trusted := meta.CRC != ""
		create := cat.Create
		if trusted {
			create = cat.CreateLoaded
		}
		tbl, err := create(meta.Name, rel, meta.PK)
		if err != nil {
			return nil, 0, err
		}
		if segs != nil {
			// The segment reader becomes this table version's column
			// store: vectorized scans decode columns lazily from it.
			tbl.AttachSegments(segs)
		}
		for _, col := range meta.NotNull {
			if err := tbl.SetNotNull(col); err != nil {
				return nil, 0, err
			}
		}
		for _, idx := range meta.Indexes {
			if trusted {
				err = tbl.DeclareIndex(idx...)
			} else {
				_, err = tbl.CreateIndex(idx...)
			}
			if err != nil {
				return nil, 0, err
			}
		}
		// Reattach persisted statistics, but only when they still describe
		// the data (a hand-edited CSV must not resurrect wrong row counts).
		if meta.Stats != nil && meta.Stats.Rows == rel.Len() {
			ts, err := stats.FromJSON(meta.Stats)
			if err != nil {
				return nil, 0, fmt.Errorf("csvio: table %s: %w", meta.Name, err)
			}
			tbl.SetStats(ts)
		}
	}
	return cat, man.Checkpoint, nil
}

// readManifest returns the parsed manifest, or (nil, nil) when the
// directory has none.
func readManifest(fs vfs.FS, dir string) (*Manifest, error) {
	path := filepath.Join(dir, manifestName)
	if !fs.Exists(path) {
		return nil, nil
	}
	data, err := fs.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("csvio: %w", err)
	}
	var man Manifest
	if err := json.Unmarshal(data, &man); err != nil {
		return nil, fmt.Errorf("csvio: bad manifest: %w", err)
	}
	return &man, nil
}

// loadTable reads one manifest entry's data file. For columnar entries
// it also returns the opened segment reader so LoadFS can attach it as
// the table's column store; CSV entries return a nil reader.
func loadTable(fs vfs.FS, dir string, meta TableMeta) (*relation.Relation, *colstore.Reader, error) {
	path := filepath.Join(dir, meta.dataFile())
	raw, err := fs.ReadFile(path)
	if err != nil {
		return nil, nil, fmt.Errorf("csvio: %w", err)
	}
	if meta.CRC != "" {
		if got := fmt.Sprintf("%08x", crc32.ChecksumIEEE(raw)); got != meta.CRC {
			return nil, nil, fmt.Errorf("csvio: %s: checksum %s does not match manifest %s (torn or corrupted file)", path, got, meta.CRC)
		}
	}
	schema, types, err := metaSchema(meta)
	if err != nil {
		return nil, nil, err
	}
	if meta.columnar() {
		rdr, err := colstore.Open(raw)
		if err != nil {
			return nil, nil, fmt.Errorf("csvio: %s: %w", path, err)
		}
		rel, err := rdr.RelationFor(schema)
		if err != nil {
			return nil, nil, fmt.Errorf("csvio: %s: %w", path, err)
		}
		return rel, rdr, nil
	}
	rel, err := decodeCSV(raw, path, meta, schema, types)
	if err != nil {
		return nil, nil, err
	}
	return rel, nil, nil
}

// metaSchema builds the relation schema a manifest entry describes.
func metaSchema(meta TableMeta) (*relation.Schema, []relation.Type, error) {
	schema := &relation.Schema{Name: meta.Name}
	types := make([]relation.Type, len(meta.Columns))
	for i, c := range meta.Columns {
		ty, err := typeByName(c.Type)
		if err != nil {
			return nil, nil, fmt.Errorf("csvio: table %s column %s: %w", meta.Name, c.Name, err)
		}
		types[i] = ty
		schema.Cols = append(schema.Cols, relation.Column{Name: c.Name, Type: ty})
	}
	return schema, types, nil
}

func decodeCSV(raw []byte, path string, meta TableMeta, schema *relation.Schema, types []relation.Type) (*relation.Relation, error) {
	records, err := csv.NewReader(bytes.NewReader(raw)).ReadAll()
	if err != nil {
		return nil, fmt.Errorf("csvio: %s: %w", path, err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("csvio: %s: missing header", path)
	}
	header := records[0]
	if len(header) != len(meta.Columns) {
		return nil, fmt.Errorf("csvio: %s: header has %d columns, manifest %d", path, len(header), len(meta.Columns))
	}
	for i, c := range meta.Columns {
		if header[i] != c.Name {
			return nil, fmt.Errorf("csvio: %s: column %d is %q, manifest says %q", path, i, header[i], c.Name)
		}
	}
	rel := relation.New(schema)
	for ri, rec := range records[1:] {
		if len(rec) != len(types) {
			return nil, fmt.Errorf("csvio: %s row %d: %d cells, want %d", path, ri+1, len(rec), len(types))
		}
		tup := relation.Tuple{Atoms: make([]value.Value, len(types))}
		for ci, cell := range rec {
			v, err := parseCell(cell, types[ci])
			if err != nil {
				return nil, fmt.Errorf("csvio: %s row %d col %s: %w", path, ri+1, meta.Columns[ci].Name, err)
			}
			tup.Atoms[ci] = v
		}
		rel.Append(tup)
	}
	return rel, nil
}

func parseCell(cell string, t relation.Type) (value.Value, error) {
	if cell == nullToken {
		return value.Null, nil
	}
	if strings.HasPrefix(cell, `\`) {
		cell = cell[1:] // unescape a literal leading backslash
	}
	switch t {
	case relation.TInt:
		i, err := strconv.ParseInt(cell, 10, 64)
		if err != nil {
			return value.Null, err
		}
		return value.Int(i), nil
	case relation.TFloat:
		f, err := strconv.ParseFloat(cell, 64)
		if err != nil {
			return value.Null, err
		}
		return value.Float(f), nil
	case relation.TBool:
		switch cell {
		case "true":
			return value.Bool(true), nil
		case "false":
			return value.Bool(false), nil
		}
		return value.Null, fmt.Errorf("bad boolean %q", cell)
	default: // VARCHAR / ANY
		return value.Str(cell), nil
	}
}

// typeByName maps a manifest type name to a relation type. Unknown names
// are an error — silently loading such a column as ANY would drop its
// type checking and mis-parse its cells.
func typeByName(name string) (relation.Type, error) {
	switch name {
	case "INTEGER":
		return relation.TInt, nil
	case "FLOAT":
		return relation.TFloat, nil
	case "VARCHAR":
		return relation.TString, nil
	case "BOOLEAN":
		return relation.TBool, nil
	case "ANY":
		return relation.TAny, nil
	}
	return relation.TAny, fmt.Errorf("unknown type %q in manifest", name)
}

func unqualify(name string) string {
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '.' {
			return name[i+1:]
		}
	}
	return name
}
