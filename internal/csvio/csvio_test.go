package csvio

import (
	"os"
	"path/filepath"
	"testing"

	"nra/internal/catalog"
	"nra/internal/relation"
	"nra/internal/tpch"
	"nra/internal/value"
)

func sampleCatalog(t testing.TB) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	rel := relation.MustFromRows("t", []string{"id", "name", "price", "flag"},
		[]any{1, "plain", 1.5, true},
		[]any{2, "", 2.25, false},              // empty string ≠ NULL
		[]any{3, nil, nil, nil},                // NULLs
		[]any{4, "comma, quoted\"", 0.0, true}, // CSV-hostile text
		[]any{5, `\N`, 3.0, false},             // literal backslash-N text
	)
	tbl, err := cat.Create("t", rel, "id")
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.SetNotNull("flag"); err == nil {
		t.Fatal("flag has NULLs; SetNotNull should fail")
	}
	if _, err := tbl.CreateIndex("name"); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.CreateIndex("name", "price"); err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cat := sampleCatalog(t)
	if err := Save(cat, dir); err != nil {
		t.Fatal(err)
	}
	back, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	orig, _ := cat.Table("t")
	got, err := back.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Rel.EqualSet(orig.Rel) {
		t.Fatalf("data changed in round trip:\n%s\nvs\n%s", got.Rel, orig.Rel)
	}
	if got.PK != "id" {
		t.Fatalf("pk = %q", got.PK)
	}
	if got.Index("name") == nil || got.Index("name", "price") == nil {
		t.Fatal("indexes lost in round trip")
	}
	// Type preservation: price stays FLOAT even where 0.
	pi := got.Rel.Schema.MustColIndex("price")
	for _, tup := range got.Rel.Tuples {
		if v := tup.Atoms[pi]; !v.IsNull() && v.Kind() != value.KindFloat {
			t.Fatalf("price kind = %v", v.Kind())
		}
	}
}

func TestEmptyStringVsNull(t *testing.T) {
	dir := t.TempDir()
	cat := sampleCatalog(t)
	if err := Save(cat, dir); err != nil {
		t.Fatal(err)
	}
	back, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := back.Table("t")
	ni := tbl.Rel.Schema.MustColIndex("name")
	var sawEmpty, sawNull, sawToken bool
	for _, tup := range tbl.Rel.Tuples {
		v := tup.Atoms[ni]
		switch {
		case v.IsNull():
			sawNull = true
		case v.Kind() == value.KindString && v.Text() == "":
			sawEmpty = true
		case v.Kind() == value.KindString && v.Text() == `\N`:
			sawToken = true
		}
	}
	if !sawEmpty || !sawNull {
		t.Fatalf("empty/NULL distinction lost: empty=%v null=%v", sawEmpty, sawNull)
	}
	// Literal `\N` text must survive via the escaping rule.
	if !sawToken {
		t.Fatal(`literal \N text lost in round trip`)
	}
}

func TestNotNullRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cat := catalog.New()
	rel := relation.MustFromRows("u", []string{"id", "v"}, []any{1, 10}, []any{2, 20})
	tbl, _ := cat.Create("u", rel, "id")
	if err := tbl.SetNotNull("v"); err != nil {
		t.Fatal(err)
	}
	if err := Save(cat, dir); err != nil {
		t.Fatal(err)
	}
	back, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := back.Table("u")
	if !got.IsNotNull("v") {
		t.Fatal("NOT NULL constraint lost")
	}
}

func TestSubsetSave(t *testing.T) {
	dir := t.TempDir()
	cat, err := tpch.Generate(tpch.Config{Parts: 5, Suppliers: 2, Customers: 3, Orders: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := Save(cat, dir, "region", "nation"); err != nil {
		t.Fatal(err)
	}
	back, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if names := back.Names(); len(names) != 2 {
		t.Fatalf("subset tables = %v", names)
	}
	if _, err := os.Stat(filepath.Join(dir, "orders.csv")); !os.IsNotExist(err) {
		t.Fatal("orders.csv should not exist")
	}
}

func TestTPCHRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cat, err := tpch.Generate(tpch.Config{Parts: 10, Suppliers: 3, Customers: 5, Orders: 20, Seed: 9, NullFraction: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if err := Save(cat, dir); err != nil {
		t.Fatal(err)
	}
	back, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range cat.Names() {
		a, _ := cat.Table(name)
		b, err := back.Table(name)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Rel.EqualSet(b.Rel) {
			t.Fatalf("table %s changed in round trip", name)
		}
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(t.TempDir()); err == nil {
		t.Fatal("missing manifest must error")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "catalog.json"), []byte("{bad"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Fatal("bad manifest must error")
	}
	// Manifest referencing a missing CSV.
	dir2 := t.TempDir()
	man := `{"tables":[{"name":"ghost","pk":"id","columns":[{"name":"id","type":"INTEGER"}]}]}`
	if err := os.WriteFile(filepath.Join(dir2, "catalog.json"), []byte(man), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir2); err == nil {
		t.Fatal("missing table file must error")
	}
}

func TestStatsPersistence(t *testing.T) {
	dir := t.TempDir()
	cat := sampleCatalog(t)
	tbl, _ := cat.Table("t")
	tbl.Analyze()
	if err := Save(cat, dir); err != nil {
		t.Fatal(err)
	}
	back, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	tbl2, _ := back.Table("t")
	ts := tbl2.Stats()
	if ts == nil {
		t.Fatal("statistics must survive a save/load round trip")
	}
	orig := tbl.Stats()
	if ts.Rows != orig.Rows || len(ts.Cols) != len(orig.Cols) {
		t.Fatalf("stats shape changed: %d rows / %d cols, want %d / %d",
			ts.Rows, len(ts.Cols), orig.Rows, len(orig.Cols))
	}
	name := ts.Col("name")
	if name == nil || name.Nulls != orig.Col("name").Nulls || name.NDV != orig.Col("name").NDV {
		t.Fatalf("column stats changed: %+v vs %+v", name, orig.Col("name"))
	}

	// Stale stats must NOT be persisted.
	if _, err := tbl.DeleteByPK([]value.Value{value.Int(5)}); err != nil {
		t.Fatal(err)
	}
	dir2 := t.TempDir()
	if err := Save(cat, dir2); err != nil {
		t.Fatal(err)
	}
	back2, err := Load(dir2)
	if err != nil {
		t.Fatal(err)
	}
	tbl3, _ := back2.Table("t")
	if tbl3.Stats() != nil {
		t.Fatal("stale statistics must not survive a save")
	}

	// Stats describing a different row count (hand-edited CSV) are dropped.
	tbl.Analyze()
	dir3 := t.TempDir()
	if err := Save(cat, dir3); err != nil {
		t.Fatal(err)
	}
	csv := filepath.Join(dir3, "t.csv")
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(csv, append(data, "6,extra,9.9,true\n"...), 0o644); err != nil {
		t.Fatal(err)
	}
	back3, err := Load(dir3)
	if err != nil {
		t.Fatal(err)
	}
	tbl4, _ := back3.Table("t")
	if tbl4.Stats() != nil {
		t.Fatal("row-count-mismatched statistics must be dropped on load")
	}
}
