package csvio

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nra/internal/catalog"
	"nra/internal/relation"
	"nra/internal/tpch"
	"nra/internal/value"
)

func sampleCatalog(t testing.TB) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	rel := relation.MustFromRows("t", []string{"id", "name", "price", "flag"},
		[]any{1, "plain", 1.5, true},
		[]any{2, "", 2.25, false},              // empty string ≠ NULL
		[]any{3, nil, nil, nil},                // NULLs
		[]any{4, "comma, quoted\"", 0.0, true}, // CSV-hostile text
		[]any{5, `\N`, 3.0, false},             // literal backslash-N text
	)
	tbl, err := cat.Create("t", rel, "id")
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.SetNotNull("flag"); err == nil {
		t.Fatal("flag has NULLs; SetNotNull should fail")
	}
	if _, err := tbl.CreateIndex("name"); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.CreateIndex("name", "price"); err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cat := sampleCatalog(t)
	if err := Save(cat, dir); err != nil {
		t.Fatal(err)
	}
	back, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	orig, _ := cat.Table("t")
	got, err := back.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Rel.EqualSet(orig.Rel) {
		t.Fatalf("data changed in round trip:\n%s\nvs\n%s", got.Rel, orig.Rel)
	}
	if got.PK != "id" {
		t.Fatalf("pk = %q", got.PK)
	}
	if got.Index("name") == nil || got.Index("name", "price") == nil {
		t.Fatal("indexes lost in round trip")
	}
	// Type preservation: price stays FLOAT even where 0.
	pi := got.Rel.Schema.MustColIndex("price")
	for _, tup := range got.Rel.Tuples {
		if v := tup.Atoms[pi]; !v.IsNull() && v.Kind() != value.KindFloat {
			t.Fatalf("price kind = %v", v.Kind())
		}
	}
}

func TestEmptyStringVsNull(t *testing.T) {
	dir := t.TempDir()
	cat := sampleCatalog(t)
	if err := Save(cat, dir); err != nil {
		t.Fatal(err)
	}
	back, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := back.Table("t")
	ni := tbl.Rel.Schema.MustColIndex("name")
	var sawEmpty, sawNull, sawToken bool
	for _, tup := range tbl.Rel.Tuples {
		v := tup.Atoms[ni]
		switch {
		case v.IsNull():
			sawNull = true
		case v.Kind() == value.KindString && v.Text() == "":
			sawEmpty = true
		case v.Kind() == value.KindString && v.Text() == `\N`:
			sawToken = true
		}
	}
	if !sawEmpty || !sawNull {
		t.Fatalf("empty/NULL distinction lost: empty=%v null=%v", sawEmpty, sawNull)
	}
	// Literal `\N` text must survive via the escaping rule.
	if !sawToken {
		t.Fatal(`literal \N text lost in round trip`)
	}
}

func TestNotNullRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cat := catalog.New()
	rel := relation.MustFromRows("u", []string{"id", "v"}, []any{1, 10}, []any{2, 20})
	tbl, _ := cat.Create("u", rel, "id")
	if err := tbl.SetNotNull("v"); err != nil {
		t.Fatal(err)
	}
	if err := Save(cat, dir); err != nil {
		t.Fatal(err)
	}
	back, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := back.Table("u")
	if !got.IsNotNull("v") {
		t.Fatal("NOT NULL constraint lost")
	}
}

func TestSubsetSave(t *testing.T) {
	dir := t.TempDir()
	cat, err := tpch.Generate(tpch.Config{Parts: 5, Suppliers: 2, Customers: 3, Orders: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := Save(cat, dir, "region", "nation"); err != nil {
		t.Fatal(err)
	}
	back, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if names := back.Names(); len(names) != 2 {
		t.Fatalf("subset tables = %v", names)
	}
	if _, err := os.Stat(filepath.Join(dir, "orders.csv")); !os.IsNotExist(err) {
		t.Fatal("orders.csv should not exist")
	}
}

func TestTPCHRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cat, err := tpch.Generate(tpch.Config{Parts: 10, Suppliers: 3, Customers: 5, Orders: 20, Seed: 9, NullFraction: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if err := Save(cat, dir); err != nil {
		t.Fatal(err)
	}
	back, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range cat.Names() {
		a, _ := cat.Table(name)
		b, err := back.Table(name)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Rel.EqualSet(b.Rel) {
			t.Fatalf("table %s changed in round trip", name)
		}
	}
}

// TestSaveAfterDrop pins that a full save into the same directory after
// DROP TABLE removes the dropped table from the manifest AND sweeps its
// data file — a reload must not resurrect it.
func TestSaveAfterDrop(t *testing.T) {
	dir := t.TempDir()
	cat := catalog.New()
	if _, err := cat.Create("a", relation.MustFromRows("a", []string{"id"}, []any{1}), "id"); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.Create("b", relation.MustFromRows("b", []string{"id"}, []any{2}), "id"); err != nil {
		t.Fatal(err)
	}
	if err := Save(cat, dir); err != nil {
		t.Fatal(err)
	}
	if err := cat.Drop("b"); err != nil {
		t.Fatal(err)
	}
	if err := Save(cat, dir); err != nil {
		t.Fatal(err)
	}
	back, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if names := back.Names(); len(names) != 1 || names[0] != "a" {
		t.Fatalf("tables after drop+save = %v, want [a]", names)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "b.") {
			t.Fatalf("dropped table's file %s survived the save", e.Name())
		}
	}
}

// TestPartialSavePreserves pins the merge semantics of a partial save
// into an existing directory: unlisted tables keep their manifest
// entries and data files — neither orphaned nor clobbered.
func TestPartialSavePreserves(t *testing.T) {
	dir := t.TempDir()
	cat := catalog.New()
	if _, err := cat.Create("a", relation.MustFromRows("a", []string{"id", "v"}, []any{1, 10}), "id"); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.Create("b", relation.MustFromRows("b", []string{"id", "v"}, []any{2, 20}), "id"); err != nil {
		t.Fatal(err)
	}
	if err := Save(cat, dir); err != nil {
		t.Fatal(err)
	}
	// Mutate both tables, then save only "a": the directory must keep b's
	// ORIGINAL rows (its file untouched) while a's are refreshed.
	if _, err := cat.Insert("a", [][]value.Value{{value.Int(3), value.Int(30)}}); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.Insert("b", [][]value.Value{{value.Int(4), value.Int(40)}}); err != nil {
		t.Fatal(err)
	}
	if err := Save(cat, dir, "a"); err != nil {
		t.Fatal(err)
	}
	back, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	a, err := back.Table("a")
	if err != nil {
		t.Fatal(err)
	}
	if a.Rel.Len() != 2 {
		t.Fatalf("a has %d rows, want 2 (refreshed)", a.Rel.Len())
	}
	b, err := back.Table("b")
	if err != nil {
		t.Fatal(err)
	}
	if b.Rel.Len() != 1 {
		t.Fatalf("b has %d rows, want 1 (pinned at the earlier save)", b.Rel.Len())
	}
}

// TestPartialSaveRefusesWALDir: a directory with a live write-ahead log
// only accepts full saves — a partial commit would desynchronise the
// journal from the manifest.
func TestPartialSaveRefusesWALDir(t *testing.T) {
	dir := t.TempDir()
	cat := sampleCatalog(t)
	if err := Save(cat, dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, WALName), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	err := Save(cat, dir, "t")
	if err == nil || !strings.Contains(err.Error(), "write-ahead log") {
		t.Fatalf("partial save into a WAL directory must be refused, got %v", err)
	}
	if err := Save(cat, dir); err != nil {
		t.Fatalf("full save into a WAL directory must still work: %v", err)
	}
}

// TestUnknownTypeError: an unknown column type in the manifest must fail
// with an error naming the table and the column.
func TestUnknownTypeError(t *testing.T) {
	dir := t.TempDir()
	cat := sampleCatalog(t)
	if err := Save(cat, dir); err != nil {
		t.Fatal(err)
	}
	manPath := filepath.Join(dir, "catalog.json")
	raw, err := os.ReadFile(manPath)
	if err != nil {
		t.Fatal(err)
	}
	var man Manifest
	if err := json.Unmarshal(raw, &man); err != nil {
		t.Fatal(err)
	}
	man.Tables[0].Columns[2].Type = "DECIMAL" // price
	raw, err = json.Marshal(man)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(manPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Load(dir)
	if err == nil {
		t.Fatal("unknown column type must fail the load")
	}
	for _, want := range []string{"t", "price", "DECIMAL"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not name %q", err, want)
		}
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(t.TempDir()); err == nil {
		t.Fatal("missing manifest must error")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "catalog.json"), []byte("{bad"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Fatal("bad manifest must error")
	}
	// Manifest referencing a missing CSV.
	dir2 := t.TempDir()
	man := `{"tables":[{"name":"ghost","pk":"id","columns":[{"name":"id","type":"INTEGER"}]}]}`
	if err := os.WriteFile(filepath.Join(dir2, "catalog.json"), []byte(man), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir2); err == nil {
		t.Fatal("missing table file must error")
	}
}

func TestStatsPersistence(t *testing.T) {
	dir := t.TempDir()
	cat := sampleCatalog(t)
	if err := cat.AnalyzeTable("t"); err != nil {
		t.Fatal(err)
	}
	cur := func(c *catalog.Catalog) *catalog.Table {
		t.Helper()
		tb, err := c.Table("t")
		if err != nil {
			t.Fatal(err)
		}
		return tb
	}
	if err := Save(cat, dir); err != nil {
		t.Fatal(err)
	}
	back, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	ts := cur(back).Stats()
	if ts == nil {
		t.Fatal("statistics must survive a save/load round trip")
	}
	orig := cur(cat).Stats()
	if ts.Rows != orig.Rows || len(ts.Cols) != len(orig.Cols) {
		t.Fatalf("stats shape changed: %d rows / %d cols, want %d / %d",
			ts.Rows, len(ts.Cols), orig.Rows, len(orig.Cols))
	}
	name := ts.Col("name")
	if name == nil || name.Nulls != orig.Col("name").Nulls || name.NDV != orig.Col("name").NDV {
		t.Fatalf("column stats changed: %+v vs %+v", name, orig.Col("name"))
	}

	// Stale stats must NOT be persisted.
	if _, err := cat.Delete("t", []value.Value{value.Int(5)}); err != nil {
		t.Fatal(err)
	}
	dir2 := t.TempDir()
	if err := Save(cat, dir2); err != nil {
		t.Fatal(err)
	}
	back2, err := Load(dir2)
	if err != nil {
		t.Fatal(err)
	}
	if cur(back2).Stats() != nil {
		t.Fatal("stale statistics must not survive a save")
	}
}

// TestTamperedCSVRejected pins the manifest checksum: a hand-edited data
// file no longer loads silently — the CRC catches it.
func TestTamperedCSVRejected(t *testing.T) {
	dir := t.TempDir()
	cat := sampleCatalog(t)
	if err := SaveCSV(cat, dir); err != nil {
		t.Fatal(err)
	}
	csv := filepath.Join(dir, "t.1.csv")
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(csv, append(data, "6,extra,9.9,true\n"...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("tampered CSV must fail the checksum, got %v", err)
	}
}

// TestTamperedSegmentRejected is the columnar twin: the manifest CRC
// covers the whole segment file, so flipped bytes fail before the
// segment's own footer checksum is even consulted.
func TestTamperedSegmentRejected(t *testing.T) {
	dir := t.TempDir()
	cat := sampleCatalog(t)
	if err := Save(cat, dir); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, "t.1.seg")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("tampered segment must fail the checksum, got %v", err)
	}
}

// TestColumnarLoadAttachesSegments pins that a columnar load leaves the
// table segment-backed (so scans can prune) and that a CSV load does not.
func TestColumnarLoadAttachesSegments(t *testing.T) {
	dir := t.TempDir()
	cat := sampleCatalog(t)
	if err := Save(cat, dir); err != nil {
		t.Fatal(err)
	}
	back, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := back.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	segs := tbl.Segments()
	if segs == nil {
		t.Fatal("columnar load must attach a segment reader")
	}
	if segs.Rows() != tbl.Rel.Len() {
		t.Fatalf("segment rows %d, relation rows %d", segs.Rows(), tbl.Rel.Len())
	}

	csvDir := t.TempDir()
	if err := SaveCSV(cat, csvDir); err != nil {
		t.Fatal(err)
	}
	back, err = Load(csvDir)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err = back.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Segments() != nil {
		t.Fatal("CSV load must not attach a segment reader")
	}
}

// TestLegacyManifest pins backward compatibility: manifests written
// before checkpointing existed (no file/crc fields) load via the
// `<name>.csv` fallback without checksum verification, and statistics
// describing a different row count are dropped.
func TestLegacyManifest(t *testing.T) {
	dir := t.TempDir()
	cat := sampleCatalog(t)
	if err := cat.AnalyzeTable("t"); err != nil {
		t.Fatal(err)
	}
	if err := SaveCSV(cat, dir); err != nil {
		t.Fatal(err)
	}
	var man Manifest
	raw, err := os.ReadFile(filepath.Join(dir, "catalog.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &man); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(filepath.Join(dir, man.Tables[0].File), filepath.Join(dir, "t.csv")); err != nil {
		t.Fatal(err)
	}
	man.Checkpoint = 0
	man.Tables[0].File = ""
	man.Tables[0].CRC = ""
	raw, err = json.Marshal(man)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "catalog.json"), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	// Hand-edit the now-unchecksummed CSV: it loads, but the persisted
	// statistics no longer describe the data and must be dropped.
	csv := filepath.Join(dir, "t.csv")
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(csv, append(data, "6,extra,9.9,true\n"...), 0o644); err != nil {
		t.Fatal(err)
	}
	back, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := back.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Rel.Len() != 6 {
		t.Fatalf("legacy load has %d rows, want 6", tbl.Rel.Len())
	}
	if tbl.Stats() != nil {
		t.Fatal("row-count-mismatched statistics must be dropped on load")
	}
}
