// Package lint implements the repository's documentation quality gates,
// using only the standard library: a godoc-coverage checker (every
// exported identifier in the audited packages must carry a doc comment)
// and an intra-repository markdown link checker. Both run as ordinary Go
// tests, so `go test ./internal/lint/` is the CI docs gate.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// MissingDocs parses the Go package in each directory and reports every
// exported top-level identifier — function, method, type, const, var —
// that has no doc comment. Test files are skipped. Each finding is
// "dir: identifier" and the result is sorted; empty means full coverage.
func MissingDocs(dirs ...string) ([]string, error) {
	var out []string
	for _, dir := range dirs {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		for _, pkg := range pkgs {
			for _, f := range pkg.Files {
				out = append(out, missingInFile(dir, f)...)
			}
		}
	}
	sort.Strings(out)
	return out, nil
}

// missingInFile reports the undocumented exported identifiers of one file.
func missingInFile(dir string, f *ast.File) []string {
	var out []string
	report := func(name string) {
		out = append(out, fmt.Sprintf("%s: %s", dir, name))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			name := d.Name.Name
			if d.Recv != nil && len(d.Recv.List) == 1 {
				if rt := receiverName(d.Recv.List[0].Type); rt != "" {
					if !ast.IsExported(rt) {
						continue // method on an unexported type
					}
					name = rt + "." + name
				}
			}
			report(name)
		case *ast.GenDecl:
			if d.Tok != token.CONST && d.Tok != token.VAR && d.Tok != token.TYPE {
				continue
			}
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
						report(s.Name.Name)
					}
				case *ast.ValueSpec:
					// A doc comment on the grouped decl ("// The built-in
					// strategies.") covers every name in the group; a
					// per-spec doc or trailing line comment also counts.
					if d.Doc != nil || s.Doc != nil || s.Comment != nil {
						continue
					}
					for _, n := range s.Names {
						if n.IsExported() {
							report(n.Name)
						}
					}
				}
			}
		}
	}
	return out
}

// receiverName extracts the receiver's type name (through pointers and
// type parameters), or "" when it has none.
func receiverName(e ast.Expr) string {
	for {
		switch t := e.(type) {
		case *ast.StarExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.IndexListExpr:
			e = t.X
		case *ast.Ident:
			return t.Name
		default:
			return ""
		}
	}
}

// mdLink matches inline markdown links and images: [text](target). Code
// fences are stripped before matching (see CheckMarkdownLinks).
var mdLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)[^)]*\)`)

// fenceLine matches a code-fence delimiter line.
var fenceLine = regexp.MustCompile("^\\s*```")

// CheckMarkdownLinks walks every .md file under root and verifies that
// each relative link target exists on disk (anchors are stripped;
// absolute URLs and mailto links are ignored). Each finding is
// "file: broken link target"; empty means every link resolves.
func CheckMarkdownLinks(root string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".md") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, target := range markdownTargets(string(data)) {
			if target == "" || strings.Contains(target, "://") ||
				strings.HasPrefix(target, "#") || strings.HasPrefix(target, "mailto:") {
				continue
			}
			target = strings.SplitN(target, "#", 2)[0]
			resolved := filepath.Join(filepath.Dir(path), target)
			if _, err := os.Stat(resolved); err != nil {
				rel, rerr := filepath.Rel(root, path)
				if rerr != nil {
					rel = path
				}
				out = append(out, fmt.Sprintf("%s: broken link %q", rel, target))
			}
		}
		return nil
	})
	sort.Strings(out)
	return out, err
}

// markdownTargets returns the link targets of a markdown document,
// skipping fenced code blocks (their bracketed text is not a link).
func markdownTargets(doc string) []string {
	var targets []string
	inFence := false
	for _, line := range strings.Split(doc, "\n") {
		if fenceLine.MatchString(line) {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
			targets = append(targets, m[1])
		}
	}
	return targets
}
