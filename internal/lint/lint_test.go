package lint

import (
	"strings"
	"testing"
)

// auditedPackages are the directories whose exported identifiers must all
// carry doc comments (the CI godoc gate). Relative to this package.
var auditedPackages = []string{
	"../colstore",
	"../exec",
	"../opt",
	"../stats",
	"../obsv",
	"../lint",
	"../service",
	"../..", // the public nra package
}

func TestGodocCoverage(t *testing.T) {
	missing, err := MissingDocs(auditedPackages...)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) > 0 {
		t.Errorf("exported identifiers without doc comments:\n  %s",
			strings.Join(missing, "\n  "))
	}
}

func TestMarkdownLinks(t *testing.T) {
	broken, err := CheckMarkdownLinks("../..")
	if err != nil {
		t.Fatal(err)
	}
	if len(broken) > 0 {
		t.Errorf("broken intra-repo markdown links:\n  %s",
			strings.Join(broken, "\n  "))
	}
}

func TestMissingDocsDetects(t *testing.T) {
	// The checker must actually detect omissions: testdata-free sanity
	// check against a package we control is impractical here, so verify
	// the matcher on this package instead — it must come back clean, and
	// the markdown scanner must see through code fences.
	targets := markdownTargets("[a](x.md)\n```\n[b](y.md)\n```\n[c](z.md#anchor)")
	if len(targets) != 2 || targets[0] != "x.md" || targets[1] != "z.md#anchor" {
		t.Errorf("markdownTargets = %v, want [x.md z.md#anchor]", targets)
	}
}
