package iomodel

import (
	"strings"
	"testing"
	"time"
)

func TestMeterAccumulates(t *testing.T) {
	var m Meter
	m.Seq(100)
	m.Seq(50)
	m.Rand(3)
	if m.SeqTuples != 150 || m.RandOps != 3 {
		t.Fatalf("meter = %+v", m)
	}
	m.Reset()
	if m.SeqTuples != 0 || m.RandOps != 0 {
		t.Fatal("reset failed")
	}
}

func TestNilMeterIsSafe(t *testing.T) {
	var m *Meter
	m.Seq(10) // must not panic
	m.Rand(10)
	m.Reset()
	if m.Cost(Disk2005()) != 0 {
		t.Fatal("nil meter cost should be 0")
	}
	if m.String() != "no meter" {
		t.Fatalf("nil meter string = %q", m.String())
	}
}

func TestCostModel(t *testing.T) {
	p := Params{TuplesPerPage: 100, SeqPageCost: time.Millisecond, RandCost: 10 * time.Millisecond}
	var m Meter
	m.Seq(250) // 3 pages (rounded up)
	m.Rand(2)
	want := 3*time.Millisecond + 20*time.Millisecond
	if got := m.Cost(p); got != want {
		t.Fatalf("cost = %v, want %v", got, want)
	}
	// Exact page multiples do not round up.
	m.Reset()
	m.Seq(200)
	if got := m.Cost(p); got != 2*time.Millisecond {
		t.Fatalf("cost = %v", got)
	}
}

func TestDisk2005RandomDominates(t *testing.T) {
	// The whole point of the model: at 2005 constants, one random access
	// costs as much as ~50 sequential pages (~5000 tuples).
	p := Disk2005()
	var seq, rnd Meter
	seq.Seq(5000)
	rnd.Rand(1)
	if seq.Cost(p) < rnd.Cost(p)/2 {
		t.Fatalf("unexpected balance: seq=%v rand=%v", seq.Cost(p), rnd.Cost(p))
	}
	if rnd.Cost(p) != 5*time.Millisecond {
		t.Fatalf("rand cost = %v", rnd.Cost(p))
	}
}

func TestString(t *testing.T) {
	var m Meter
	m.Seq(7)
	m.Rand(2)
	s := m.String()
	if !strings.Contains(s, "seq=7") || !strings.Contains(s, "rand=2") {
		t.Fatalf("string = %q", s)
	}
}
