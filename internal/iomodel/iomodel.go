// Package iomodel is the disk-access cost model that stands in for the
// paper's experimental substrate. The paper ran on a 2005 server with the
// database on a single SCSI disk, a 32 MB buffer cache flushed before
// every run — so its measurements are dominated by page I/O: sequential
// scans for the hash-join-based plans, random index-rowid accesses for
// the nested-iteration plans. An in-memory Go engine erases exactly that
// asymmetry (a hash probe and a sequential read cost nanoseconds alike),
// which would silently change *why* each strategy wins.
//
// The executors therefore count their accesses in a Meter — sequential
// tuples read/written versus random accesses (index traversals and rowid
// fetches) — and the benchmark harness reports, next to the measured
// wall-clock time, the modeled elapsed time of the same plan on the
// paper's class of hardware. The model is the standard textbook one:
//
//	cost = (seqTuples / TuplesPerPage) · SeqPageCost + randAccesses · RandCost
//
// with defaults matching a 2005 SCSI disk (8 KB pages at ~80 MB/s
// sequential, ~5 ms per random access). DESIGN.md §5 documents this
// substitution; EXPERIMENTS.md compares figure shapes on the modeled
// series and reports the raw in-memory timings alongside.
package iomodel

import (
	"fmt"
	"time"
)

// Meter accumulates access counts for one plan execution.
type Meter struct {
	SeqTuples int64 // tuples read or written in sequential passes
	RandOps   int64 // random accesses: index traversals, rowid fetches
}

// Seq records n tuples of sequential I/O.
func (m *Meter) Seq(n int) {
	if m != nil {
		m.SeqTuples += int64(n)
	}
}

// Rand records n random accesses.
func (m *Meter) Rand(n int) {
	if m != nil {
		m.RandOps += int64(n)
	}
}

// Reset zeroes the counters.
func (m *Meter) Reset() {
	if m != nil {
		m.SeqTuples, m.RandOps = 0, 0
	}
}

// Params are the hardware constants of the model.
type Params struct {
	TuplesPerPage int           // tuples per 8 KB page
	SeqPageCost   time.Duration // sequential page read/write
	RandCost      time.Duration // one random access (seek + read)
}

// Disk2005 approximates the paper's testbed: a single 2005-era SCSI disk
// under a cold buffer cache.
func Disk2005() Params {
	return Params{
		TuplesPerPage: 100,
		SeqPageCost:   100 * time.Microsecond, // ≈ 80 MB/s sequential
		RandCost:      5 * time.Millisecond,   // ≈ 200 IOPS
	}
}

// Cost returns the modeled elapsed time of the metered accesses.
func (m *Meter) Cost(p Params) time.Duration {
	if m == nil {
		return 0
	}
	pages := m.SeqTuples / int64(p.TuplesPerPage)
	if m.SeqTuples%int64(p.TuplesPerPage) != 0 {
		pages++
	}
	return time.Duration(pages)*p.SeqPageCost + time.Duration(m.RandOps)*p.RandCost
}

// String summarises the counters.
func (m *Meter) String() string {
	if m == nil {
		return "no meter"
	}
	return fmt.Sprintf("seq=%d tuples, rand=%d ops", m.SeqTuples, m.RandOps)
}
