package opt

import (
	"math"
	"testing"

	"nra/internal/expr"
	"nra/internal/relation"
	"nra/internal/sql"
	"nra/internal/stats"
	"nra/internal/value"
)

// build returns an estimator over one table "t" with an integer column
// t.k holding 1..n each repeated reps times, of which nullEvery-th
// values are NULL.
func build(t *testing.T, n, reps int, nulls int) *Estimator {
	t.Helper()
	schema := &relation.Schema{Name: "t", Cols: []relation.Column{{Name: "t.k", Type: relation.TInt}}}
	rel := relation.New(schema)
	for i := 0; i < n; i++ {
		for r := 0; r < reps; r++ {
			rel.Append(relation.Tuple{Atoms: []value.Value{value.Int(int64(i + 1))}})
		}
	}
	for i := 0; i < nulls; i++ {
		rel.Append(relation.Tuple{Atoms: []value.Value{value.Null}})
	}
	e := NewEstimator()
	e.AddTable(schema, stats.Collect(rel))
	return e
}

func TestSelectionSelectivity(t *testing.T) {
	e := build(t, 1000, 1, 0)
	sel := e.Selectivity(expr.Compare(expr.Eq, expr.Col("t.k"), expr.Val(500)))
	if math.Abs(sel-0.001) > 1e-4 {
		t.Errorf("eq selectivity = %g, want ≈0.001", sel)
	}
	sel = e.Selectivity(expr.Compare(expr.Lt, expr.Col("t.k"), expr.Val(251)))
	if math.Abs(sel-0.25) > 0.05 {
		t.Errorf("range selectivity = %g, want ≈0.25", sel)
	}
	// Flipped literal side.
	flip := e.Selectivity(expr.Compare(expr.Gt, expr.Val(251), expr.Col("t.k")))
	if math.Abs(flip-sel) > 1e-9 {
		t.Errorf("lit > col (%g) should equal col < lit (%g)", flip, sel)
	}
	// Conjunction: independence.
	and := e.Selectivity(expr.And(
		expr.Compare(expr.Lt, expr.Col("t.k"), expr.Val(501)),
		expr.Compare(expr.Gt, expr.Col("t.k"), expr.Val(250)),
	))
	if and <= 0 || and >= 0.5 {
		t.Errorf("AND selectivity = %g, want in (0, 0.5)", and)
	}
	// Unknown column falls back to defaults.
	if got := e.Selectivity(expr.Compare(expr.Eq, expr.Col("u.x"), expr.Val(1))); got != DefaultEq {
		t.Errorf("unknown column eq = %g, want %g", got, DefaultEq)
	}
}

func TestNullAwareSelectivity(t *testing.T) {
	e := build(t, 100, 1, 100) // half the rows NULL
	isNull := e.Selectivity(expr.IsNull{E: expr.Col("t.k")})
	if math.Abs(isNull-0.5) > 1e-9 {
		t.Errorf("IS NULL = %g, want 0.5", isNull)
	}
	// Comparisons never match NULL rows: Eq ≈ 0.5 · 1/100.
	eq := e.Selectivity(expr.Compare(expr.Eq, expr.Col("t.k"), expr.Val(50)))
	if math.Abs(eq-0.005) > 1e-3 {
		t.Errorf("eq on half-NULL column = %g, want ≈0.005", eq)
	}
}

func TestJoinRows(t *testing.T) {
	e := build(t, 1000, 10, 0) // 10000 rows, ndv 1000
	on := expr.Compare(expr.Eq, expr.Col("t.k"), expr.Col("t.k"))
	got := e.JoinRows(10000, 10000, on)
	// |L|·|R|/max(ndv) = 1e8/1000 = 1e5.
	if got < 0.5e5 || got > 2e5 {
		t.Errorf("join rows = %g, want ≈1e5", got)
	}
	if outer := e.OuterJoinRows(10, 0, on); outer != 10 {
		t.Errorf("outer join preserves left side: %g, want 10", outer)
	}
	if cross := e.JoinRows(100, 100, nil); cross != 10000 {
		t.Errorf("nil condition = cross product: %g, want 10000", cross)
	}
}

func TestGroupShape(t *testing.T) {
	e := build(t, 1000, 5, 0)
	corr := expr.Compare(expr.Eq, expr.Col("t.k"), expr.Col("t.k"))
	match, avg := e.GroupShape(corr, 5000, 5000)
	if math.Abs(match-1) > 0.1 {
		t.Errorf("matchFrac = %g, want ≈1 (same key domain)", match)
	}
	if avg < 2 || avg > 10 {
		t.Errorf("avgGroup = %g, want ≈5", avg)
	}
	// Uncorrelated: one shared group of all inner tuples.
	match, avg = e.GroupShape(nil, 100, 42)
	if match != 1 || avg != 42 {
		t.Errorf("uncorrelated shape = (%g, %g), want (1, 42)", match, avg)
	}
	if match, _ := e.GroupShape(corr, 100, 0); match != 0 {
		t.Errorf("empty inner: matchFrac = %g, want 0", match)
	}
}

func TestLinkSelectivityPerOperator(t *testing.T) {
	base := LinkInput{MatchFrac: 0.8, AvgGroup: 4, LinkedNDV: 100}
	cases := []struct {
		name string
		in   LinkInput
		lo   float64
		hi   float64
	}{
		{"EXISTS", with(base, func(i *LinkInput) { i.Kind = sql.Exists }), 0.8, 0.8},
		{"NOT EXISTS", with(base, func(i *LinkInput) { i.Kind = sql.NotExists }), 0.2, 0.2},
		{"IN", with(base, func(i *LinkInput) { i.Kind = sql.In }), 0.01, 0.1},
		{"SOME >", with(base, func(i *LinkInput) { i.Kind = sql.CmpSome; i.Cmp = expr.Gt }), 0.4, 0.7},
		{"ALL >", with(base, func(i *LinkInput) { i.Kind = sql.CmpAll; i.Cmp = expr.Gt }), 0.2, 0.3},
		{"NOT IN", with(base, func(i *LinkInput) { i.Kind = sql.NotIn }), 0.9, 1},
		{"scalar =", with(base, func(i *LinkInput) { i.Kind = sql.CmpScalar; i.Cmp = expr.Eq }), 0.005, 0.01},
	}
	for _, tc := range cases {
		f, why := LinkSelectivity(tc.in)
		if f < tc.lo-1e-9 || f > tc.hi+1e-9 {
			t.Errorf("%s: selectivity = %g (%s), want in [%g, %g]", tc.name, f, why, tc.lo, tc.hi)
		}
		if why == "" {
			t.Errorf("%s: empty explanation", tc.name)
		}
	}
}

// TestAllNullInner exercises the paper's central pitfall: with an
// all-NULL inner column, x NOT IN (subquery) is true only for outer
// tuples whose group is empty, and never false-positives.
func TestAllNullInner(t *testing.T) {
	in := LinkInput{Kind: sql.NotIn, MatchFrac: 1, AvgGroup: 3, LinkedNull: 1, LinkedNDV: 1}
	if f, why := LinkSelectivity(in); f != 0 {
		t.Errorf("NOT IN, all groups non-empty, all members NULL: %g (%s), want 0", f, why)
	}
	in.MatchFrac = 0.6
	if f, _ := LinkSelectivity(in); math.Abs(f-0.4) > 1e-9 {
		t.Errorf("NOT IN with 40%% empty groups and all-NULL members: %g, want 0.4", f)
	}
	all := LinkInput{Kind: sql.CmpAll, Cmp: expr.Gt, MatchFrac: 1, AvgGroup: 3, LinkedNull: 1}
	if f, _ := LinkSelectivity(all); f != 0 {
		t.Errorf("> ALL over all-NULL members: %g, want 0", f)
	}
	// NULL outer attribute: SOME/IN can never be true.
	someNull := LinkInput{Kind: sql.In, MatchFrac: 1, AvgGroup: 3, AttrNull: 1, LinkedNDV: 10}
	if f, _ := LinkSelectivity(someNull); f != 0 {
		t.Errorf("IN with always-NULL attribute: %g, want 0", f)
	}
}

func TestCostModel(t *testing.T) {
	if HashJoinCost(100, 1000, 50) <= 1000 {
		t.Error("hash join cost must exceed its probe input")
	}
	if SortCost(1024) != 1024*10 {
		t.Errorf("SortCost(1024) = %g, want 10240", SortCost(1024))
	}
	if NestLinkCost(1000, 10) <= SortCost(1000) {
		t.Error("nestlink cost must exceed its sort")
	}
	if EstBytes(10, 52) != 1000 {
		t.Errorf("EstBytes = %g, want 1000", EstBytes(10, 52))
	}
	if got := ParallelDegree(8, 100); got != 1 {
		t.Errorf("tiny input: degree %d, want 1", got)
	}
	if got := ParallelDegree(8, 1e6); got != 8 {
		t.Errorf("large input: degree %d, want 8", got)
	}
	if got := ParallelDegree(1, 1e6); got != 1 {
		t.Errorf("serial request: degree %d, want 1", got)
	}
}

func with(in LinkInput, f func(*LinkInput)) LinkInput {
	f(&in)
	return in
}

// intColumn collects stats over a single int column holding lo..hi once each.
func intColumn(lo, hi int) *stats.Column {
	schema := &relation.Schema{Name: "t", Cols: []relation.Column{{Name: "t.c", Type: relation.TInt}}}
	rel := relation.New(schema)
	for i := lo; i <= hi; i++ {
		rel.Append(relation.Tuple{Atoms: []value.Value{value.Int(int64(i))}})
	}
	return stats.Collect(rel).Col("c")
}

func TestCmpColFraction(t *testing.T) {
	low := intColumn(1, 1000)       // uniform 1..1000
	high := intColumn(2000, 3000)   // strictly above low
	overlap := intColumn(501, 1500) // upper half overlaps low

	if f, ok := CmpColFraction(high, low, expr.Gt); !ok || f < 0.99 {
		t.Errorf("P(high > low) = %g, %v; want ≈1", f, ok)
	}
	if f, ok := CmpColFraction(low, high, expr.Gt); !ok || f > 0.01 {
		t.Errorf("P(low > high) = %g, %v; want ≈0", f, ok)
	}
	// Identical distributions: P(a < b) ≈ 1/2.
	if f, ok := CmpColFraction(low, intColumn(1, 1000), expr.Lt); !ok || math.Abs(f-0.5) > 0.05 {
		t.Errorf("P(a < b), same distribution = %g, %v; want ≈0.5", f, ok)
	}
	// Partial overlap lands strictly between the extremes.
	if f, ok := CmpColFraction(low, overlap, expr.Le); !ok || f < 0.6 || f > 0.95 {
		t.Errorf("P(low <= overlap) = %g, %v; want in (0.6, 0.95)", f, ok)
	}
	// Eq/Ne and missing histograms are not handled here.
	if _, ok := CmpColFraction(low, high, expr.Eq); ok {
		t.Error("Eq should report ok=false")
	}
	if _, ok := CmpColFraction(nil, high, expr.Gt); ok {
		t.Error("missing column should report ok=false")
	}
}

func TestLinkSelectivityPThetaOverride(t *testing.T) {
	in := LinkInput{Kind: sql.CmpAll, Cmp: expr.Gt, MatchFrac: 1, AvgGroup: 4,
		PTheta: 0.95, HavePTheta: true}
	got, _ := LinkSelectivity(in)
	want := math.Pow(0.95, 4)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("ALL with pθ override = %g, want %g", got, want)
	}
	// The override must not disturb Eq-based operators (IN uses 1/NDV).
	eq := LinkInput{Kind: sql.In, MatchFrac: 1, AvgGroup: 1, LinkedNDV: 10,
		PTheta: 0.95, HavePTheta: true}
	got, _ = LinkSelectivity(eq)
	if math.Abs(got-0.1) > 1e-9 {
		t.Errorf("IN with irrelevant override = %g, want 0.1", got)
	}
}
