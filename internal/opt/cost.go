package opt

import "math"

// The cost model prices plans in abstract tuple-touch units — one unit
// per tuple read or written by an operator, with a constant overhead
// factor on hash builds. Absolute values are meaningless; only the
// comparison between two candidate plans for the same query matters, so
// the constants need to rank alternatives correctly rather than predict
// wall-clock time.
const (
	// HashBuildWeight inflates build-side tuples: inserting into a hash
	// table costs more than streaming past a probe tuple.
	HashBuildWeight = 1.5
	// TupleOverhead mirrors exec.TupleBytes' fixed per-tuple bytes, used
	// when translating estimated rows into working-state bytes.
	TupleOverhead = 48
	// MinParallelRows is the smallest dominant operator input for which
	// fanning work across a worker pool amortises its startup and merge
	// cost; below it the planner picks degree 1.
	MinParallelRows = 8192
)

// HashJoinCost prices a hash join: build the smaller side, stream the
// probe side, write the output.
func HashJoinCost(build, probe, out float64) float64 {
	return HashBuildWeight*build + probe + out
}

// SortCost prices an n·log₂(n) comparison sort.
func SortCost(n float64) float64 {
	if n < 2 {
		return n
	}
	return n * math.Log2(n)
}

// NestLinkCost prices the fused nest + linking selection: sort the
// joined relation by the nest keys, one scan evaluating the linking
// predicate, write the survivors.
func NestLinkCost(n, out float64) float64 {
	return SortCost(n) + n + out
}

// SemiJoinCost prices the §4.2.5 positive rewrite: a hash semijoin with
// the reduced child as build side.
func SemiJoinCost(build, probe, out float64) float64 {
	return HashJoinCost(build, probe, out)
}

// DistinctCost prices hash-based duplicate elimination over n tuples:
// one hash build over the input. The §4.2.5 inner-block rewrite pays it
// to restore the pre-join multiset — unless the query's output is a set,
// in which case the planner elides the operator and this cost.
func DistinctCost(n float64) float64 {
	return HashBuildWeight * n
}

// EstBytes converts an estimated row count and per-tuple payload width
// into the working-state bytes the resource governor would account.
func EstBytes(rows, width float64) float64 {
	return rows * (width + TupleOverhead)
}

// ParallelDegree picks the effective partitioned-parallel degree: the
// requested degree when the dominant operator input is large enough to
// amortise the pool, otherwise 1 (serial operators, no pool startup or
// partition merge). Results are byte-identical at every degree, so this
// is purely a performance decision.
func ParallelDegree(requested int, peakRows float64) int {
	if requested <= 1 {
		return 1
	}
	if peakRows < MinParallelRows {
		return 1
	}
	return requested
}
