package opt

// VecMinRows is the smallest operator input for which batch-at-a-time
// execution amortises its setup — converting the input to column
// vectors, allocating selection and offset arrays — over the row
// engine's direct per-tuple loop. Below it the planner keeps the row
// operators; results are byte-identical either way, so this is purely a
// performance decision (like MinParallelRows for the worker pool).
const VecMinRows = 128

// VectorizeWorthwhile reports whether an operator input of the given
// estimated or actual row count is large enough for the batch operators
// to pay off.
func VectorizeWorthwhile(rows float64) bool { return rows >= VecMinRows }
