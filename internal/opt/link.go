package opt

import (
	"fmt"
	"math"

	"nra/internal/expr"
	"nra/internal/sql"
)

// LinkInput describes one linking edge for selectivity estimation.
type LinkInput struct {
	Kind sql.LinkKind
	Cmp  expr.CmpOp // comparison for IN/NOT IN (Eq/Ne), SOME/ALL, scalar

	MatchFrac float64 // fraction of outer tuples whose nested group is non-empty
	AvgGroup  float64 // mean group size among outer tuples with a non-empty group

	AttrNull   float64 // NULL fraction of the outer linking attribute
	LinkedNull float64 // NULL fraction of the inner linked attribute
	LinkedNDV  float64 // distinct count of the inner linked attribute; ≤0 = unknown
	ConstAttr  bool    // the linking attribute is a constant (never NULL)
	CountAgg   bool    // scalar link compares against COUNT (empty group → 0, not NULL)

	// PTheta, when HavePTheta, overrides the default range selectivity
	// with a histogram-derived P(attr θ member) (see CmpColFraction).
	// It applies only to range comparisons; Eq/Ne keep the NDV estimate.
	PTheta     float64
	HavePTheta bool
}

// LinkSelectivity estimates the fraction of outer tuples a linking
// selection keeps, with the paper's three-valued NULL semantics baked
// in: a NULL linking attribute or an all-NULL inner column makes the
// quantified comparison unknown, which σ treats as false — except for
// ALL/NOT IN over an *empty* group, which is vacuously true. The second
// return value explains the estimate for EXPLAIN.
func LinkSelectivity(in LinkInput) (float64, string) {
	match := clamp01(in.MatchFrac)
	m := math.Max(1, in.AvgGroup)
	nOut := clamp01(in.AttrNull)
	if in.ConstAttr {
		nOut = 0
	}
	nIn := clamp01(in.LinkedNull)

	switch in.Kind {
	case sql.Exists:
		return match, fmt.Sprintf("P(non-empty group) = %.3g", match)
	case sql.NotExists:
		return clamp01(1 - match), fmt.Sprintf("1 − P(non-empty group) = %.3g", 1-match)
	case sql.In, sql.CmpSome:
		// One non-NULL member satisfying θ suffices; members are NULL with
		// probability nIn and satisfy θ with probability pθ.
		p := in.pThetaFor(someOp(in))
		f := (1 - nOut) * match * (1 - math.Pow(1-p*(1-nIn), m))
		return clamp01(f), fmt.Sprintf("(1−%.2g)·%.3g·(1−(1−pθ·(1−%.2g))^%.3g), pθ=%.3g", nOut, match, nIn, m, p)
	case sql.NotIn, sql.CmpAll:
		// Empty groups pass vacuously; otherwise the attribute must be
		// non-NULL and every member non-NULL and satisfying θ. An all-NULL
		// inner column (nIn = 1) therefore lets only empty-group tuples
		// through — the paper's NOT IN pitfall.
		p := in.pThetaFor(allOp(in))
		f := (1 - match) + match*(1-nOut)*math.Pow(p*(1-nIn), m)
		return clamp01(f), fmt.Sprintf("(1−%.3g) + %.3g·(1−%.2g)·(pθ·(1−%.2g))^%.3g, pθ=%.3g", match, match, nOut, nIn, m, p)
	case sql.CmpScalar:
		p := in.pThetaFor(in.Cmp)
		empty := 0.0
		if in.CountAgg {
			empty = p // COUNT over an empty group is 0, still comparable
		}
		f := (1 - nOut) * (match*p + (1-match)*empty)
		return clamp01(f), fmt.Sprintf("(1−%.2g)·(%.3g·pθ + %.3g·empty), pθ=%.3g", nOut, match, 1-match, p)
	default:
		return DefaultSel, "unknown linking operator"
	}
}

// someOp returns the member comparison for positive quantification.
func someOp(in LinkInput) expr.CmpOp {
	if in.Kind == sql.In {
		return expr.Eq
	}
	return in.Cmp
}

// allOp returns the member comparison for universal quantification.
func allOp(in LinkInput) expr.CmpOp {
	if in.Kind == sql.NotIn {
		return expr.Ne
	}
	return in.Cmp
}

// pThetaFor resolves the member selectivity, preferring the histogram-
// derived override for range comparisons.
func (in LinkInput) pThetaFor(op expr.CmpOp) float64 {
	if in.HavePTheta {
		switch op {
		case expr.Lt, expr.Le, expr.Gt, expr.Ge:
			return clamp01(in.PTheta)
		}
	}
	return pTheta(op, in.LinkedNDV)
}

// pTheta is the probability a single non-NULL member pair satisfies θ.
func pTheta(op expr.CmpOp, ndv float64) float64 {
	switch op {
	case expr.Eq:
		if ndv > 0 {
			return clamp01(1 / ndv)
		}
		return DefaultEq
	case expr.Ne:
		if ndv > 0 {
			return clamp01(1 - 1/ndv)
		}
		return 1 - DefaultEq
	default:
		return DefaultRange
	}
}
