package opt

import "nra/internal/stats"

// QError is the symmetric estimation-error factor
// max(est,act)/min(est,act), with both sides clamped to at least one
// row, so 1 is a perfect estimate and the value is ≥ 1 regardless of the
// error's direction.
func QError(est float64, act int) float64 {
	e := est
	if e < 1 {
		e = 1
	}
	a := float64(act)
	if a < 1 {
		a = 1
	}
	if e > a {
		return e / a
	}
	return a / e
}

// Accuracy is the process-wide q-error histogram the executor feeds one
// observation into per traced plan operator that carried an estimate —
// the estimator's live report card. Accuracy.Suspect() reporting true is
// the signal that the collected statistics have drifted and the operator
// should re-ANALYZE.
var Accuracy stats.QErrorHist
