// Package opt is the cost-based physical planner's brain: a cardinality
// estimator over the statistics of internal/stats — selections, joins,
// and all six linking operators with NULL-fraction-aware formulas for
// the NOT IN / ALL pitfalls the paper centres on — plus a cost model
// over the engine's physical operators (hash join, semijoin, fused
// nest + linking selection, partitioned-parallel variants, grace-join /
// external-sort spilling).
//
// The estimator is deliberately all-or-nothing: internal/core only
// constructs one when every base table in the query carries fresh
// statistics, so a query with missing or stale stats plans exactly as
// the heuristic planner always has (plan parity).
package opt

import (
	"math"

	"nra/internal/expr"
	"nra/internal/relation"
	"nra/internal/stats"
	"nra/internal/value"
)

// Default selectivities when no statistics resolve an expression
// (System R's classic constants).
const (
	DefaultEq    = 0.1
	DefaultRange = 1.0 / 3
	DefaultSel   = 0.25
)

// Estimator resolves qualified column names ("alias.col") to collected
// column statistics and estimates cardinalities over them.
type Estimator struct {
	cols map[string]*stats.Column
}

// NewEstimator returns an empty estimator.
func NewEstimator() *Estimator {
	return &Estimator{cols: make(map[string]*stats.Column)}
}

// AddTable registers one FROM-clause table instance: schema carries the
// block-qualified column names, ts the (unqualified) table statistics.
func (e *Estimator) AddTable(schema *relation.Schema, ts *stats.Table) {
	for _, c := range schema.Cols {
		if cs := ts.Col(unqualify(c.Name)); cs != nil {
			e.cols[c.Name] = cs
		}
	}
}

// Col returns the statistics behind a qualified column name, or nil.
func (e *Estimator) Col(name string) *stats.Column { return e.cols[name] }

// Selectivity estimates the fraction of tuples satisfying p under the
// usual independence assumptions. A nil predicate selects everything.
func (e *Estimator) Selectivity(p expr.Expr) float64 {
	if p == nil {
		return 1
	}
	switch x := p.(type) {
	case expr.Logic:
		l, r := e.Selectivity(x.L), e.Selectivity(x.R)
		if x.Op == expr.OpAnd {
			return l * r
		}
		return clamp01(l + r - l*r)
	case expr.Not:
		return clamp01(1 - e.Selectivity(x.E))
	case expr.IsNull:
		frac := DefaultEq
		if c, ok := x.E.(expr.Column); ok {
			if cs := e.cols[c.Name]; cs != nil {
				frac = cs.NullFrac()
			}
		}
		if x.Negate {
			return clamp01(1 - frac)
		}
		return frac
	case expr.Cmp:
		return e.cmpSelectivity(x)
	default:
		return DefaultSel
	}
}

func (e *Estimator) cmpSelectivity(c expr.Cmp) float64 {
	// Normalise to column-op-something.
	lc, lIsCol := c.L.(expr.Column)
	rc, rIsCol := c.R.(expr.Column)
	switch {
	case lIsCol && rIsCol:
		return e.colColSelectivity(c.Op, lc.Name, rc.Name)
	case lIsCol:
		if lit, ok := c.R.(expr.Lit); ok {
			return e.colLitSelectivity(c.Op, lc.Name, lit.V)
		}
	case rIsCol:
		if lit, ok := c.L.(expr.Lit); ok {
			return e.colLitSelectivity(c.Op.Flip(), rc.Name, lit.V)
		}
	}
	if c.Op == expr.Eq {
		return DefaultEq
	}
	return DefaultRange
}

func (e *Estimator) colColSelectivity(op expr.CmpOp, l, r string) float64 {
	ls, rs := e.cols[l], e.cols[r]
	switch op {
	case expr.Eq:
		ndv := math.Max(ndvOf(ls), ndvOf(rs))
		if ndv <= 0 {
			return DefaultEq
		}
		return clamp01((1 - nullOf(ls)) * (1 - nullOf(rs)) / ndv)
	case expr.Ne:
		return clamp01(1 - e.colColSelectivity(expr.Eq, l, r))
	default:
		return DefaultRange
	}
}

func (e *Estimator) colLitSelectivity(op expr.CmpOp, col string, v value.Value) float64 {
	cs := e.cols[col]
	if cs == nil || v.IsNull() {
		if op == expr.Eq {
			return DefaultEq
		}
		return DefaultRange
	}
	nn := 1 - cs.NullFrac() // comparisons are unknown (false) on NULL
	switch op {
	case expr.Eq:
		return clamp01(nn * cs.FracEq(v))
	case expr.Ne:
		return clamp01(nn * (1 - cs.FracEq(v)))
	case expr.Lt:
		return clamp01(nn * cs.FracLT(v))
	case expr.Le:
		return clamp01(nn * cs.FracLE(v))
	case expr.Gt:
		return clamp01(nn * (1 - cs.FracLE(v)))
	case expr.Ge:
		return clamp01(nn * (1 - cs.FracLT(v)))
	}
	return DefaultRange
}

// JoinRows estimates |L ⋈_on R|. Equality conjuncts between two known
// columns use the standard |L|·|R| / max(ndv) containment estimate;
// everything else falls back to Selectivity. A nil condition is a cross
// product (the virtual Cartesian product of uncorrelated subqueries).
func (e *Estimator) JoinRows(lrows, rrows float64, on expr.Expr) float64 {
	return math.Max(0, lrows*rrows*e.Selectivity(on))
}

// OuterJoinRows estimates |L ⟕_on R|: every left tuple survives, so the
// result is at least |L|.
func (e *Estimator) OuterJoinRows(lrows, rrows float64, on expr.Expr) float64 {
	return math.Max(lrows, e.JoinRows(lrows, rrows, on))
}

// GroupShape estimates the nest structure an equi-correlation produces:
// matchFrac is the fraction of outer tuples whose group is non-empty,
// avgGroup the mean group size among those. A nil condition models the
// uncorrelated case (one shared group: every outer tuple sees all inner
// tuples).
func (e *Estimator) GroupShape(corr expr.Expr, outerRows, innerRows float64) (matchFrac, avgGroup float64) {
	if innerRows <= 0 || outerRows <= 0 {
		return 0, 0
	}
	if corr == nil {
		return 1, innerRows
	}
	matchFrac = 1
	for _, pair := range equiPairs(corr, nil) {
		a, b := e.cols[pair[0]], e.cols[pair[1]]
		na, nb := ndvOf(a), ndvOf(b)
		if na <= 0 || nb <= 0 {
			continue
		}
		// Containment: the side with fewer distinct values is a subset of
		// the other, so min(ndv)/max(ndv) of the values on the wider side
		// have a partner. Tuples whose join column is NULL never match.
		matchFrac *= math.Min(na, nb) / math.Max(1, math.Max(na, nb))
		matchFrac *= (1 - nullOf(a)) * (1 - nullOf(b))
	}
	join := e.JoinRows(outerRows, innerRows, corr)
	matchFrac = clamp01(matchFrac)
	if matchFrac <= 0 {
		return 0, 0
	}
	avgGroup = math.Max(1, join/(outerRows*matchFrac))
	return matchFrac, avgGroup
}

// equiPairs collects [outer, inner] column name pairs from the equality
// conjuncts of a correlation condition.
func equiPairs(ex expr.Expr, dst [][2]string) [][2]string {
	switch x := ex.(type) {
	case expr.Logic:
		if x.Op == expr.OpAnd {
			return equiPairs(x.R, equiPairs(x.L, dst))
		}
	case expr.Cmp:
		if x.Op == expr.Eq {
			l, lok := x.L.(expr.Column)
			r, rok := x.R.(expr.Column)
			if lok && rok {
				return append(dst, [2]string{l.Name, r.Name})
			}
		}
	}
	return dst
}

// CmpColFraction estimates P(left op right) for independent non-NULL
// draws from the two columns, integrating left's cumulative distribution
// over right's equi-depth buckets (trapezoid rule on the bucket bounds).
// It reports ok=false for non-range operators or when either side lacks a
// histogram — callers then fall back to the fixed default selectivities.
func CmpColFraction(left, right *stats.Column, op expr.CmpOp) (float64, bool) {
	switch op {
	case expr.Lt, expr.Le, expr.Gt, expr.Ge:
	default:
		return 0, false
	}
	if left == nil || right == nil || left.Hist == nil || right.Hist == nil {
		return 0, false
	}
	total := float64(right.Hist.Total())
	if total <= 0 {
		return 0, false
	}
	le := 0.0 // P(left ≤ right)
	for i, cnt := range right.Hist.Counts {
		lo, hi := right.Hist.Bounds[i], right.Hist.Bounds[i+1]
		w := float64(cnt) / total
		le += w * (left.FracLE(lo) + left.FracLE(hi)) / 2
	}
	switch op {
	case expr.Lt, expr.Le:
		return clamp01(le), true
	default: // Gt, Ge
		return clamp01(1 - le), true
	}
}

func ndvOf(c *stats.Column) float64 {
	if c == nil {
		return 0
	}
	return c.NDV
}

func nullOf(c *stats.Column) float64 {
	if c == nil {
		return 0
	}
	return c.NullFrac()
}

func clamp01(f float64) float64 {
	if f < 0 || math.IsNaN(f) {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

func unqualify(name string) string {
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '.' {
			return name[i+1:]
		}
	}
	return name
}
