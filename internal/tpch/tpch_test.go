package tpch

import (
	"testing"

	"nra/internal/value"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Parts: 20, Suppliers: 5, Customers: 10, Orders: 30, Seed: 7}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range a.Names() {
		ta, _ := a.Table(name)
		tb, _ := b.Table(name)
		if !ta.Rel.EqualSet(tb.Rel) {
			t.Fatalf("table %s not deterministic", name)
		}
	}
	c, err := Generate(Config{Parts: 20, Suppliers: 5, Customers: 10, Orders: 30, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	to, _ := a.Table("orders")
	tc, _ := c.Table("orders")
	if to.Rel.EqualSet(tc.Rel) {
		t.Fatal("different seeds should give different data")
	}
}

func TestCardinalities(t *testing.T) {
	cfg := Config{Parts: 25, Suppliers: 8, Customers: 10, Orders: 40, PartSuppPerPart: 4, MaxLinesPerOrder: 7, Seed: 1}
	cat, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{"region": 5, "nation": 25, "part": 25, "supplier": 8, "customer": 10, "orders": 40, "partsupp": 100}
	for name, want := range counts {
		tbl, err := cat.Table(name)
		if err != nil {
			t.Fatal(err)
		}
		if tbl.Rel.Len() != want {
			t.Errorf("%s has %d rows, want %d", name, tbl.Rel.Len(), want)
		}
	}
	li, _ := cat.Table("lineitem")
	if li.Rel.Len() < 40 || li.Rel.Len() > 40*7 {
		t.Errorf("lineitem rows %d outside [orders, 7·orders]", li.Rel.Len())
	}
}

func TestScaleRatios(t *testing.T) {
	cfg := Scale(0.01)
	if cfg.Parts != 2000 || cfg.Orders != 15000 || cfg.Suppliers != 100 || cfg.Customers != 1500 {
		t.Fatalf("scale ratios wrong: %+v", cfg)
	}
	tiny := Scale(0.0000001) // everything clamps to ≥ 1
	if tiny.Parts < 1 || tiny.Orders < 1 {
		t.Fatal("scale must clamp to 1")
	}
}

func TestForeignKeysResolve(t *testing.T) {
	cat, err := Generate(Config{Parts: 15, Suppliers: 6, Customers: 9, Orders: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	li, _ := cat.Table("lineitem")
	ordersTbl, _ := cat.Table("orders")
	okIdx := ordersTbl.Index("o_orderkey")
	if okIdx == nil {
		t.Fatal("orders PK index missing")
	}
	oi := li.Rel.Schema.MustColIndex("l_orderkey")
	pi := li.Rel.Schema.MustColIndex("l_partkey")
	si := li.Rel.Schema.MustColIndex("l_suppkey")
	for _, tup := range li.Rel.Tuples {
		if len(okIdx.Lookup(tup.Atoms[oi])) != 1 {
			t.Fatalf("dangling l_orderkey %v", tup.Atoms[oi])
		}
		if p := tup.Atoms[pi].Int64(); p < 1 || p > 15 {
			t.Fatalf("l_partkey out of range: %d", p)
		}
		if s := tup.Atoms[si].Int64(); s < 1 || s > 6 {
			t.Fatalf("l_suppkey out of range: %d", s)
		}
	}
	ps, _ := cat.Table("partsupp")
	ppi := ps.Rel.Schema.MustColIndex("ps_partkey")
	psi := ps.Rel.Schema.MustColIndex("ps_suppkey")
	for _, tup := range ps.Rel.Tuples {
		if p := tup.Atoms[ppi].Int64(); p < 1 || p > 15 {
			t.Fatalf("ps_partkey out of range: %d", p)
		}
		if s := tup.Atoms[psi].Int64(); s < 1 || s > 6 {
			t.Fatalf("ps_suppkey out of range: %d", s)
		}
	}
}

func TestNullInjection(t *testing.T) {
	cat, err := Generate(Config{Parts: 50, Suppliers: 5, Customers: 5, Orders: 200, Seed: 5, NullFraction: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	li, _ := cat.Table("lineitem")
	col := li.Rel.Col("l_extendedprice")
	nulls := 0
	for _, v := range col {
		if v.IsNull() {
			nulls++
		}
	}
	if nulls == 0 {
		t.Fatal("NullFraction produced no NULLs")
	}
	frac := float64(nulls) / float64(len(col))
	if frac < 0.15 || frac > 0.45 {
		t.Fatalf("null fraction %f far from 0.3", frac)
	}
	// PKs must never be NULL (catalog.Create enforces; reaching here means ok).
	clean, err := Generate(Config{Parts: 10, Suppliers: 3, Customers: 3, Orders: 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	li2, _ := clean.Table("lineitem")
	for _, v := range li2.Rel.Col("l_extendedprice") {
		if v.IsNull() {
			t.Fatal("NULL without NullFraction")
		}
	}
}

func TestDatesAreISOAndOrdered(t *testing.T) {
	cat, err := Generate(Config{Parts: 5, Suppliers: 2, Customers: 3, Orders: 50, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	li, _ := cat.Table("lineitem")
	si := li.Rel.Schema.MustColIndex("l_shipdate")
	ri := li.Rel.Schema.MustColIndex("l_receiptdate")
	for _, tup := range li.Rel.Tuples {
		ship, receipt := tup.Atoms[si], tup.Atoms[ri]
		if len(ship.Text()) != 10 || ship.Text()[4] != '-' {
			t.Fatalf("bad date format %q", ship.Text())
		}
		cmp, known, err := value.Compare(ship, receipt)
		if err != nil || !known || cmp >= 0 {
			t.Fatalf("l_shipdate %s should precede l_receiptdate %s", ship, receipt)
		}
	}
}

func TestFullTPCHSchemas(t *testing.T) {
	cat, err := Generate(Config{Parts: 3, Suppliers: 2, Customers: 2, Orders: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]string{
		"region":   {"r_regionkey", "r_name", "r_comment"},
		"nation":   {"n_nationkey", "n_name", "n_regionkey", "n_comment"},
		"supplier": {"s_suppkey", "s_name", "s_address", "s_nationkey", "s_phone", "s_acctbal", "s_comment"},
		"part":     {"p_partkey", "p_name", "p_mfgr", "p_brand", "p_type", "p_size", "p_container", "p_retailprice", "p_comment"},
		"partsupp": {"ps_rowid", "ps_partkey", "ps_suppkey", "ps_availqty", "ps_supplycost", "ps_comment"},
		"customer": {"c_custkey", "c_name", "c_address", "c_nationkey", "c_phone", "c_acctbal", "c_mktsegment", "c_comment"},
		"orders":   {"o_orderkey", "o_custkey", "o_orderstatus", "o_totalprice", "o_orderdate", "o_orderpriority", "o_clerk", "o_shippriority", "o_comment"},
		"lineitem": {"l_rowid", "l_orderkey", "l_partkey", "l_suppkey", "l_linenumber", "l_quantity", "l_extendedprice", "l_discount", "l_tax", "l_returnflag", "l_linestatus", "l_shipdate", "l_commitdate", "l_receiptdate", "l_shipinstruct", "l_shipmode", "l_comment"},
	}
	for name, cols := range want {
		tbl, err := cat.Table(name)
		if err != nil {
			t.Fatal(err)
		}
		got := tbl.Rel.Schema.ColNames()
		if len(got) != len(cols) {
			t.Fatalf("%s: %d columns, want %d (%v)", name, len(got), len(cols), got)
		}
		for i, c := range cols {
			if got[i] != c {
				t.Fatalf("%s col %d = %q, want %q", name, i, got[i], c)
			}
		}
	}
}

func TestPartSizeDomain(t *testing.T) {
	cat, err := Generate(Config{Parts: 200, Suppliers: 10, Customers: 5, Orders: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	part, _ := cat.Table("part")
	for _, v := range part.Rel.Col("p_size") {
		if s := v.Int64(); s < 1 || s > 50 {
			t.Fatalf("p_size out of TPC-H domain [1,50]: %d", s)
		}
	}
}
