// Package tpch is a deterministic, scale-parameterised generator for the
// TPC-H schema the paper's experiments run on (§5.1 used scale factor 1 on
// a 2005-era server; the benchmark harness here sweeps the same
// query-block sizes at laptop scale — see DESIGN.md §5 for why the
// substitution preserves the figures' shapes).
//
// Two deviations from the TPC-H specification, both required by the
// engine model of the paper: lineitem and partsupp get a single-column
// surrogate primary key (l_rowid, ps_rowid), because the nested relational
// approach assumes each relation has one unique non-NULL attribute; and an
// optional NullFraction injects NULLs into nullable measure columns so the
// NULL-semantics experiments have something to chew on (TPC-H itself is
// NULL-free — the paper's "if the NOT NULL constraint is dropped"
// discussions presume possible NULLs).
package tpch

// rng is a splitmix64 generator: tiny, fast, and stable across Go
// versions, so generated databases are reproducible byte for byte.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng { return &rng{state: seed ^ 0x9E3779B97F4A7C15} }

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// intn returns a uniform integer in [0, n).
func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// rangeInt returns a uniform integer in [lo, hi].
func (r *rng) rangeInt(lo, hi int) int { return lo + r.intn(hi-lo+1) }

// float returns a uniform float64 in [0, 1).
func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// money returns a price in [lo, hi] with two decimals.
func (r *rng) money(lo, hi float64) float64 {
	cents := int64(lo*100) + int64(r.float()*float64(int64(hi*100)-int64(lo*100)+1))
	return float64(cents) / 100
}

// pick returns a random element of choices.
func pick[T any](r *rng, choices []T) T { return choices[r.intn(len(choices))] }
