package tpch

import (
	"fmt"

	"nra/internal/catalog"
	"nra/internal/relation"
	"nra/internal/value"
)

var (
	regionNames = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	nationNames = []string{
		"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
		"FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
		"JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA",
		"ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
		"UNITED STATES",
	}
	priorities  = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	segments    = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	containers  = []string{"SM CASE", "SM BOX", "MED BAG", "MED BOX", "LG CASE", "LG BOX", "JUMBO PKG", "WRAP JAR"}
	types       = []string{"STANDARD ANODIZED TIN", "SMALL PLATED COPPER", "MEDIUM BURNISHED NICKEL", "ECONOMY BRUSHED STEEL", "PROMO POLISHED BRASS", "LARGE ANODIZED ZINC"}
	shipModes   = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
	instructs   = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}
	nameNouns   = []string{"almond", "antique", "aquamarine", "azure", "beige", "bisque", "black", "blanched", "blue", "blush", "brown", "burlywood", "burnished", "chartreuse", "chiffon", "chocolate", "coral", "cornflower"}
	commentBits = []string{"carefully", "quickly", "furiously", "slyly", "blithely", "ironic", "final", "pending", "express", "regular", "special", "bold", "even", "silent"}
)

// Generate builds the TPC-H tables into a fresh catalog.
func Generate(cfg Config) (*catalog.Catalog, error) {
	cfg = cfg.normalised()
	cat := catalog.New()
	g := &gen{cfg: cfg, rng: newRNG(cfg.Seed)}

	builders := []func(*catalog.Catalog) error{
		g.region, g.nation, g.supplier, g.part, g.partsupp,
		g.customer, g.orders, g.lineitem,
	}
	for _, build := range builders {
		if err := build(cat); err != nil {
			return nil, err
		}
	}
	return cat, nil
}

type gen struct {
	cfg Config
	rng *rng

	// lineitem needs per-order keys and the part/supplier domains.
	orderKeys []int
}

// maybeNull replaces v with NULL at the configured fraction.
func (g *gen) maybeNull(v value.Value) value.Value {
	if g.cfg.NullFraction > 0 && g.rng.float() < g.cfg.NullFraction {
		return value.Null
	}
	return v
}

func (g *gen) comment() value.Value {
	return value.Str(pick(g.rng, commentBits) + " " + pick(g.rng, commentBits))
}

func (g *gen) phone() value.Value {
	return value.Str(fmt.Sprintf("%d-%03d-%03d-%04d",
		10+g.rng.intn(25), g.rng.intn(1000), g.rng.intn(1000), g.rng.intn(10000)))
}

// date returns an ISO date uniformly distributed over TPC-H's order-date
// range [1992-01-01, 1998-08-02], as day offsets into a simplified
// 360-day calendar (12 months × 30 days) — ISO strings keep lexicographic
// order equal to chronological order, which is all the engine needs.
func (g *gen) date(startYear, years int) string {
	return dayToDate(g.rng.intn(years*360), startYear)
}

func dayToDate(day, startYear int) string {
	y := startYear + day/360
	m := (day%360)/30 + 1
	d := day%30 + 1
	return fmt.Sprintf("%04d-%02d-%02d", y, m, d)
}

func create(cat *catalog.Catalog, name string, cols []string, rows [][]value.Value, pk string) error {
	schema := &relation.Schema{Name: name}
	for _, c := range cols {
		schema.Cols = append(schema.Cols, relation.Column{Name: c, Type: relation.TAny})
	}
	rel := relation.New(schema)
	for _, r := range rows {
		rel.Append(relation.Tuple{Atoms: r})
	}
	// Infer column types from the first non-null value.
	for ci := range schema.Cols {
		for _, t := range rel.Tuples {
			v := t.Atoms[ci]
			if v.IsNull() {
				continue
			}
			switch v.Kind() {
			case value.KindInt:
				schema.Cols[ci].Type = relation.TInt
			case value.KindFloat:
				schema.Cols[ci].Type = relation.TFloat
			case value.KindString:
				schema.Cols[ci].Type = relation.TString
			case value.KindBool:
				schema.Cols[ci].Type = relation.TBool
			}
			break
		}
	}
	_, err := cat.Create(name, rel, pk)
	return err
}

func (g *gen) region(cat *catalog.Catalog) error {
	var rows [][]value.Value
	for i, name := range regionNames {
		rows = append(rows, []value.Value{value.Int(int64(i)), value.Str(name), g.comment()})
	}
	return create(cat, "region", []string{"r_regionkey", "r_name", "r_comment"}, rows, "r_regionkey")
}

func (g *gen) nation(cat *catalog.Catalog) error {
	var rows [][]value.Value
	for i, name := range nationNames {
		rows = append(rows, []value.Value{
			value.Int(int64(i)), value.Str(name), value.Int(int64(i % 5)), g.comment(),
		})
	}
	return create(cat, "nation",
		[]string{"n_nationkey", "n_name", "n_regionkey", "n_comment"}, rows, "n_nationkey")
}

func (g *gen) supplier(cat *catalog.Catalog) error {
	rows := make([][]value.Value, 0, g.cfg.Suppliers)
	for i := 1; i <= g.cfg.Suppliers; i++ {
		rows = append(rows, []value.Value{
			value.Int(int64(i)),
			value.Str(fmt.Sprintf("Supplier#%09d", i)),
			value.Str(fmt.Sprintf("addr %d %s", g.rng.intn(1000), pick(g.rng, nameNouns))),
			value.Int(int64(g.rng.intn(len(nationNames)))),
			g.phone(),
			g.maybeNull(value.Float(g.rng.money(-999.99, 9999.99))),
			g.comment(),
		})
	}
	return create(cat, "supplier",
		[]string{"s_suppkey", "s_name", "s_address", "s_nationkey", "s_phone", "s_acctbal", "s_comment"},
		rows, "s_suppkey")
}

func (g *gen) part(cat *catalog.Catalog) error {
	rows := make([][]value.Value, 0, g.cfg.Parts)
	for i := 1; i <= g.cfg.Parts; i++ {
		rows = append(rows, []value.Value{
			value.Int(int64(i)),
			value.Str(pick(g.rng, nameNouns) + " " + pick(g.rng, nameNouns)),
			value.Str(fmt.Sprintf("Manufacturer#%d", 1+g.rng.intn(5))),
			value.Str(fmt.Sprintf("Brand#%d%d", 1+g.rng.intn(5), 1+g.rng.intn(5))),
			value.Str(pick(g.rng, types)),
			value.Int(int64(g.rng.rangeInt(1, 50))),
			value.Str(pick(g.rng, containers)),
			g.maybeNull(value.Float(g.rng.money(900, 2100))),
			g.comment(),
		})
	}
	return create(cat, "part",
		[]string{"p_partkey", "p_name", "p_mfgr", "p_brand", "p_type", "p_size", "p_container", "p_retailprice", "p_comment"},
		rows, "p_partkey")
}

func (g *gen) partsupp(cat *catalog.Catalog) error {
	rows := make([][]value.Value, 0, g.cfg.Parts*g.cfg.PartSuppPerPart)
	rowid := 0
	for p := 1; p <= g.cfg.Parts; p++ {
		for s := 0; s < g.cfg.PartSuppPerPart; s++ {
			rowid++
			suppkey := 1 + (p+s*(g.cfg.Suppliers/g.cfg.PartSuppPerPart+1))%g.cfg.Suppliers
			rows = append(rows, []value.Value{
				value.Int(int64(rowid)),
				value.Int(int64(p)),
				value.Int(int64(suppkey)),
				value.Int(int64(g.rng.rangeInt(1, 9999))),
				g.maybeNull(value.Float(g.rng.money(1, 1000))),
				g.comment(),
			})
		}
	}
	return create(cat, "partsupp",
		[]string{"ps_rowid", "ps_partkey", "ps_suppkey", "ps_availqty", "ps_supplycost", "ps_comment"},
		rows, "ps_rowid")
}

func (g *gen) customer(cat *catalog.Catalog) error {
	rows := make([][]value.Value, 0, g.cfg.Customers)
	for i := 1; i <= g.cfg.Customers; i++ {
		rows = append(rows, []value.Value{
			value.Int(int64(i)),
			value.Str(fmt.Sprintf("Customer#%09d", i)),
			value.Str(fmt.Sprintf("addr %d %s", g.rng.intn(1000), pick(g.rng, nameNouns))),
			value.Int(int64(g.rng.intn(len(nationNames)))),
			g.phone(),
			g.maybeNull(value.Float(g.rng.money(-999.99, 9999.99))),
			value.Str(pick(g.rng, segments)),
			g.comment(),
		})
	}
	return create(cat, "customer",
		[]string{"c_custkey", "c_name", "c_address", "c_nationkey", "c_phone", "c_acctbal", "c_mktsegment", "c_comment"},
		rows, "c_custkey")
}

func (g *gen) orders(cat *catalog.Catalog) error {
	rows := make([][]value.Value, 0, g.cfg.Orders)
	g.orderKeys = g.orderKeys[:0]
	for i := 1; i <= g.cfg.Orders; i++ {
		g.orderKeys = append(g.orderKeys, i)
		rows = append(rows, []value.Value{
			value.Int(int64(i)),
			value.Int(int64(1 + g.rng.intn(g.cfg.Customers))),
			value.Str(pick(g.rng, []string{"O", "F", "P"})),
			g.maybeNull(value.Float(g.rng.money(850, 500_000))),
			value.Str(g.date(1992, 7)),
			value.Str(pick(g.rng, priorities)),
			value.Str(fmt.Sprintf("Clerk#%09d", 1+g.rng.intn(1000))),
			value.Int(0),
			g.comment(),
		})
	}
	return create(cat, "orders",
		[]string{"o_orderkey", "o_custkey", "o_orderstatus", "o_totalprice", "o_orderdate", "o_orderpriority", "o_clerk", "o_shippriority", "o_comment"},
		rows, "o_orderkey")
}

func (g *gen) lineitem(cat *catalog.Catalog) error {
	var rows [][]value.Value
	rowid := 0
	for _, ok := range g.orderKeys {
		lines := g.rng.rangeInt(1, g.cfg.MaxLinesPerOrder)
		base := g.rng.intn(7 * 360) // order date offset reused for ship dates
		for ln := 1; ln <= lines; ln++ {
			rowid++
			ship := base + g.rng.rangeInt(1, 121)
			commit := base + g.rng.rangeInt(30, 90)
			receipt := ship + g.rng.rangeInt(1, 30)
			qty := g.rng.rangeInt(1, 50)
			price := g.rng.money(900, 105_000)
			rows = append(rows, []value.Value{
				value.Int(int64(rowid)),
				value.Int(int64(ok)),
				value.Int(int64(1 + g.rng.intn(g.cfg.Parts))),
				value.Int(int64(1 + g.rng.intn(g.cfg.Suppliers))),
				value.Int(int64(ln)),
				value.Int(int64(qty)),
				g.maybeNull(value.Float(price)),
				value.Float(float64(g.rng.intn(11)) / 100),
				value.Float(float64(g.rng.intn(9)) / 100),
				value.Str(pick(g.rng, []string{"R", "A", "N"})),
				value.Str(pick(g.rng, []string{"O", "F"})),
				value.Str(dayToDate(ship, 1992)),
				value.Str(dayToDate(commit, 1992)),
				value.Str(dayToDate(receipt, 1992)),
				value.Str(pick(g.rng, instructs)),
				value.Str(pick(g.rng, shipModes)),
				g.comment(),
			})
		}
	}
	return create(cat, "lineitem",
		[]string{"l_rowid", "l_orderkey", "l_partkey", "l_suppkey", "l_linenumber", "l_quantity", "l_extendedprice", "l_discount", "l_tax", "l_returnflag", "l_linestatus", "l_shipdate", "l_commitdate", "l_receiptdate", "l_shipinstruct", "l_shipmode", "l_comment"},
		rows, "l_rowid")
}
