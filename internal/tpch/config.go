package tpch

// Config sets the row counts and generation knobs. The zero value is not
// usable; start from DefaultConfig or Scale.
type Config struct {
	Parts     int
	Suppliers int
	Customers int
	Orders    int

	// PartSuppPerPart is the number of suppliers per part (TPC-H: 4).
	PartSuppPerPart int
	// MaxLinesPerOrder is the per-order lineitem count upper bound
	// (TPC-H: 7; uniform in [1, max]).
	MaxLinesPerOrder int

	// Seed makes generation deterministic.
	Seed uint64

	// NullFraction injects NULLs into the nullable measure columns
	// (l_extendedprice, ps_supplycost, o_totalprice, p_retailprice,
	// s_acctbal, c_acctbal). 0 produces a specification-clean, NULL-free
	// database.
	NullFraction float64
}

// Scale returns the TPC-H cardinality ratios at the given scale factor:
// sf = 1 is the paper's 1 GB configuration (200k parts, 10k suppliers,
// 150k customers, 1.5M orders, ~6M lineitems). The benchmarks use small
// fractions of that.
func Scale(sf float64) Config {
	round := func(f float64) int {
		n := int(f + 0.5)
		if n < 1 {
			return 1
		}
		return n
	}
	return Config{
		Parts:            round(200_000 * sf),
		Suppliers:        round(10_000 * sf),
		Customers:        round(150_000 * sf),
		Orders:           round(1_500_000 * sf),
		PartSuppPerPart:  4,
		MaxLinesPerOrder: 7,
		Seed:             42,
	}
}

// DefaultConfig is a small laptop-friendly database (sf = 1/500).
func DefaultConfig() Config { return Scale(0.002) }

func (c Config) normalised() Config {
	if c.PartSuppPerPart <= 0 {
		c.PartSuppPerPart = 4
	}
	if c.MaxLinesPerOrder <= 0 {
		c.MaxLinesPerOrder = 7
	}
	if c.Parts <= 0 {
		c.Parts = 1
	}
	if c.Suppliers <= 0 {
		c.Suppliers = 1
	}
	if c.Customers <= 0 {
		c.Customers = 1
	}
	if c.Orders <= 0 {
		c.Orders = 1
	}
	return c
}
