package native

import (
	"fmt"

	"nra/internal/algebra"
	"nra/internal/exec"
	"nra/internal/expr"
	"nra/internal/relation"
	"nra/internal/sql"
)

// Execute runs the query with the chosen plan.
func (e *Executor) Execute() (*relation.Relation, error) {
	if e.mode == ModeUnnested {
		return e.runPipeline()
	}
	return e.runNestedIteration()
}

// Execute is the package-level convenience: plan and run.
func Execute(q *sql.Query) (*relation.Relation, error) {
	ex, err := New(q)
	if err != nil {
		return nil, err
	}
	return ex.Execute()
}

// reduceBlock materialises σ_{θ_i}(R_i): the block's tables joined on
// their local predicates, keeping all columns. Single-table blocks run as
// one pipelined scan+filter pass.
func (e *Executor) reduceBlock(b *sql.Block) (*relation.Relation, error) {
	if len(b.Tables) == 1 {
		bt := b.Tables[0]
		base := &relation.Relation{Schema: bt.Schema, Tuples: bt.Table.Rel.Tuples}
		e.m.Seq(base.Len())
		local, err := e.q.LowerAll(b.Local)
		if err != nil {
			return nil, err
		}
		return exec.Drain(exec.Background(), exec.NewFilter(exec.NewScan(base), local))
	}
	var rel *relation.Relation
	for ti, bt := range b.Tables {
		tblRel := &relation.Relation{Schema: bt.Schema, Tuples: bt.Table.Rel.Tuples}
		e.m.Seq(tblRel.Len()) // full table scan
		if ti == 0 {
			rel = tblRel
			continue
		}
		joined, err := algebra.Join(rel, tblRel, nil)
		if err != nil {
			return nil, err
		}
		rel = joined
	}
	local, err := e.q.LowerAll(b.Local)
	if err != nil {
		return nil, err
	}
	if local != nil {
		rel, err = algebra.Select(rel, local)
		if err != nil {
			return nil, err
		}
	}
	return rel, nil
}

// runPipeline executes the bottom-up semijoin/antijoin plan (Query 2a's
// shape: "first performs an antijoin of partsupp and lineitem ... then a
// semijoin of part and the previous resulting view"; each table fully
// accessed once).
func (e *Executor) runPipeline() (*relation.Relation, error) {
	var chain []*sql.Block
	for b := e.q.Root; ; b = b.Links[0].Child {
		chain = append(chain, b)
		if len(b.Links) == 0 {
			break
		}
	}
	view, err := e.reduceBlock(chain[len(chain)-1])
	if err != nil {
		return nil, err
	}
	for i := len(chain) - 2; i >= 0; i-- {
		b := chain[i]
		edge := b.Links[0]
		rel, err := e.reduceBlock(b)
		if err != nil {
			return nil, err
		}
		cond, err := e.q.LowerAll(corrExprs(edge.Child))
		if err != nil {
			return nil, err
		}
		relLen, viewLen := rel.Len(), view.Len()
		view, err = e.applyUnnested(rel, view, edge, cond)
		if err != nil {
			return nil, err
		}
		e.m.Seq(relLen + viewLen + view.Len()) // hash (anti/semi)join passes
	}
	return exec.FinishQuery(view, e.q)
}

func corrExprs(b *sql.Block) []sql.Expr {
	out := make([]sql.Expr, 0, len(b.Corr))
	for _, cp := range b.Corr {
		out = append(out, cp.E)
	}
	return out
}

// applyUnnested reduces rel by the (anti/semi)join that unnests one
// linking predicate against the child view.
func (e *Executor) applyUnnested(rel, view *relation.Relation, edge *sql.LinkEdge, corr expr.Expr) (*relation.Relation, error) {
	switch edge.Kind {
	case sql.Exists:
		return algebra.SemiJoin(rel, view, corr)
	case sql.NotExists:
		return algebra.AntiJoin(rel, view, corr)
	}
	la, err := e.q.LinkedAttr(edge.Child)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnsupported, err)
	}
	left, err := e.leftExpr(edge)
	if err != nil {
		return nil, err
	}
	switch edge.Kind {
	case sql.In:
		return algebra.SemiJoin(rel, view, expr.And(corr, expr.Compare(expr.Eq, left, expr.Col(la))))
	case sql.CmpSome:
		return algebra.SemiJoin(rel, view, expr.And(corr, expr.Compare(edge.Cmp, left, expr.Col(la))))
	case sql.NotIn:
		// A NOT IN S ≡ A ▷_{A=B} S — sound only under the NOT NULL
		// constraints the planner verified.
		return algebra.AntiJoin(rel, view, expr.And(corr, expr.Compare(expr.Eq, left, expr.Col(la))))
	case sql.CmpAll:
		// A θALL S ≡ A ▷_{A ¬θ B} S under the same constraints.
		return algebra.AntiJoin(rel, view, expr.And(corr, expr.Compare(edge.Cmp.Negate(), left, expr.Col(la))))
	}
	return nil, fmt.Errorf("%w: linking operator %v", ErrUnsupported, edge.Kind)
}

func (e *Executor) leftExpr(edge *sql.LinkEdge) (expr.Expr, error) {
	switch l := edge.Pred.Left.(type) {
	case *sql.ColRef:
		r, ok := e.q.Resolve(l)
		if !ok {
			return nil, fmt.Errorf("%w: unresolved linking attribute %s", ErrUnsupported, l)
		}
		return expr.Col(r.Name), nil
	case *sql.Lit:
		return expr.Lit{V: l.V}, nil
	}
	return nil, fmt.Errorf("%w: linking attribute %s", ErrUnsupported, edge.Pred.Left)
}
