package native

import (
	"fmt"

	"nra/internal/algebra"
	"nra/internal/exec"
	"nra/internal/expr"
	"nra/internal/relation"
	"nra/internal/sql"
	"nra/internal/value"
)

// runNestedIteration executes the fallback plan: the outer block is
// scanned once with its local selections applied, and for each qualifying
// outer tuple every subquery is re-evaluated, fetching inner tuples
// through the best matching index ("accessed by index rowid", §5.2).
func (e *Executor) runNestedIteration() (*relation.Relation, error) {
	e.blocks = make(map[int]*blockState)
	root := e.q.Root
	outer, err := e.reduceBlock(root)
	if err != nil {
		return nil, err
	}
	e.m.Seq(outer.Len())
	kept := relation.New(outer.Schema)
	frames := []frame{{block: root}}
	for _, t := range outer.Tuples {
		frames[0].tuple = t
		ok := true
		for _, edge := range root.Links {
			tri, err := e.evalLink(edge, frames)
			if err != nil {
				return nil, err
			}
			if !tri.IsTrue() {
				ok = false
				break
			}
		}
		if ok {
			kept.Append(t)
		}
	}
	return exec.FinishQuery(kept, e.q)
}

type frame struct {
	block *sql.Block
	tuple relation.Tuple
}

// evalLink evaluates one linking predicate for the outer tuples bound in
// frames, re-running the subquery with index-assisted access.
func (e *Executor) evalLink(edge *sql.LinkEdge, frames []frame) (value.Tri, error) {
	child := edge.Child
	st, err := e.blockState(child)
	if err != nil {
		return value.Unknown, err
	}

	var left value.Value
	if edge.Kind != sql.Exists && edge.Kind != sql.NotExists {
		v, err := e.leftValue(edge, frames)
		if err != nil {
			return value.Unknown, err
		}
		left = v
	}

	// Scalar aggregate: fold the qualifying candidates, compare once.
	if edge.Kind == sql.CmpScalar {
		return e.evalScalarLink(edge, st, frames, left)
	}

	res := initialTri(edge.Kind)
	stop := false
	err = e.eachCandidate(st, frames, func(cand relation.Tuple) error {
		// The candidate qualifies only if the child's own linking
		// predicates hold (recursive nested iteration).
		sub := append(append([]frame{}, frames...), frame{block: child, tuple: cand})
		for _, l := range child.Links {
			tri, err := e.evalLink(l, sub)
			if err != nil {
				return err
			}
			if !tri.IsTrue() {
				return nil
			}
		}
		switch edge.Kind {
		case sql.Exists:
			res, stop = value.True, true
			return nil
		case sql.NotExists:
			res, stop = value.False, true
			return nil
		}
		item, err := st.itemValue(cand)
		if err != nil {
			return err
		}
		cmp, err := linkCmp(edge).Apply(left, item)
		if err != nil {
			return err
		}
		switch edge.Kind {
		case sql.In, sql.CmpSome:
			res = res.Or(cmp)
			stop = res == value.True
		case sql.NotIn, sql.CmpAll:
			res = res.And(cmp)
			stop = res == value.False
		}
		return nil
	}, &stop)
	if err != nil {
		return value.Unknown, err
	}
	return res, nil
}

// evalScalarLink evaluates "left θ (select agg(col) ...)" by nested
// iteration: accumulate the aggregate over the qualifying inner tuples
// (index-assisted), then apply θ once.
func (e *Executor) evalScalarLink(edge *sql.LinkEdge, st *blockState, frames []frame, left value.Value) (value.Tri, error) {
	child := edge.Child
	agg, ok := child.Agg()
	if !ok {
		return value.Unknown, fmt.Errorf("native: block %d is not a scalar aggregate", child.ID)
	}
	colIdx := -1
	if agg.Col != "" {
		colIdx = st.rel.Schema.ColIndex(agg.Col)
		if colIdx < 0 {
			return value.Unknown, fmt.Errorf("native: aggregate column %s missing", agg.Col)
		}
	}
	state := algebra.NewAggState(agg.Func)
	stop := false
	err := e.eachCandidate(st, frames, func(cand relation.Tuple) error {
		sub := append(append([]frame{}, frames...), frame{block: child, tuple: cand})
		for _, l := range child.Links {
			tri, err := e.evalLink(l, sub)
			if err != nil {
				return err
			}
			if !tri.IsTrue() {
				return nil
			}
		}
		if colIdx < 0 {
			state.AddRow()
			return nil
		}
		return state.Add(cand.Atoms[colIdx])
	}, &stop)
	if err != nil {
		return value.Unknown, err
	}
	return edge.Cmp.Apply(left, state.Result())
}

func initialTri(k sql.LinkKind) value.Tri {
	switch k {
	case sql.Exists, sql.In, sql.CmpSome:
		return value.False
	default:
		return value.True
	}
}

func linkCmp(edge *sql.LinkEdge) expr.CmpOp {
	switch edge.Kind {
	case sql.In:
		return expr.Eq
	case sql.NotIn:
		return expr.Ne
	default:
		return edge.Cmp
	}
}

func (e *Executor) leftValue(edge *sql.LinkEdge, frames []frame) (value.Value, error) {
	switch l := edge.Pred.Left.(type) {
	case *sql.Lit:
		return l.V, nil
	case *sql.ColRef:
		r, ok := e.q.Resolve(l)
		if !ok {
			return value.Null, fmt.Errorf("native: unresolved linking attribute %s", l)
		}
		for i := len(frames) - 1; i >= 0; i-- {
			if frames[i].block == r.Block {
				j := r.Block.Schema.ColIndex(r.Name)
				return frames[i].tuple.Atoms[j], nil
			}
		}
		return value.Null, fmt.Errorf("native: no frame for %s", l)
	}
	return value.Null, fmt.Errorf("native: bad linking attribute %s", edge.Pred.Left)
}

// eachCandidate enumerates the child rows satisfying the block's local and
// correlated predicates, via the chosen index when one applies. The stop
// flag allows quantifier early-exit.
func (e *Executor) eachCandidate(st *blockState, frames []frame, f func(relation.Tuple) error, stop *bool) error {
	rows, usedIndex, err := st.candidateRows(frames)
	if err != nil {
		return err
	}
	if usedIndex {
		// One index traversal plus one rowid fetch per candidate — the
		// random-access pattern of "accessed by index rowid" (§5.2).
		e.m.Rand(1 + len(rows))
	} else {
		e.m.Seq(len(rows)) // full scan of the inner table
	}
	stack := make([]relation.Tuple, 0, len(frames)+1)
	for _, fr := range frames {
		stack = append(stack, fr.tuple)
	}
	stack = append(stack, relation.Tuple{})
	for _, row := range rows {
		if *stop {
			return nil
		}
		t := st.rel.Tuples[row]
		stack[len(stack)-1] = t
		ok := true
		for _, rp := range st.rest {
			tri, err := rp.compiled.Truth(stack...)
			if err != nil {
				return err
			}
			if !tri.IsTrue() {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		if err := f(t); err != nil {
			return err
		}
	}
	return nil
}

// candidateRows returns the row ids to inspect: an index lookup when the
// block's equality predicates cover an index, a full scan otherwise.
func (st *blockState) candidateRows(frames []frame) ([]int, bool, error) {
	if st.idx == nil {
		return st.allRows, false, nil
	}
	keys := make([]value.Value, len(st.idxProbe))
	for i, pr := range st.idxProbe {
		if pr.fromCol == "" {
			keys[i] = pr.constVal
			continue
		}
		found := false
		for fi := len(frames) - 1; fi >= 0; fi-- {
			if frames[fi].block == pr.fromBlock {
				keys[i] = frames[fi].tuple.Atoms[pr.fromIdx]
				found = true
				break
			}
		}
		if !found {
			return nil, false, fmt.Errorf("native: no frame for probe column %s", pr.fromCol)
		}
	}
	return st.idx.Lookup(keys...), true, nil
}

// itemValue extracts the subquery's single select-item value from a
// candidate tuple.
func (st *blockState) itemValue(cand relation.Tuple) (value.Value, error) {
	if st.itemIdx < 0 {
		return value.Null, fmt.Errorf("native: block %d has no single-column select item", st.b.ID)
	}
	return cand.Atoms[st.itemIdx], nil
}
