// Package native reproduces the query-processing strategy of "System A",
// the commercial DBMS the paper benchmarks against (§5). The paper
// explains, query by query, which plans System A chooses; this package
// encodes those rules:
//
//   - A linearly correlated query whose linking operators are all
//     unnestable executes as a bottom-up semijoin/antijoin pipeline, each
//     table fully accessed once (the Query 2a plan). EXISTS / IN / θ SOME
//     unnest to semijoins, NOT EXISTS to an antijoin; ALL and NOT IN
//     unnest to an antijoin only when NOT NULL constraints on both the
//     linking and the linked attribute make that transformation sound
//     (the Query 1 observation — without the constraint, antijoin is
//     NOT equivalent under NULLs, as §2 shows).
//
//   - Any other shape — a negative quantified operator without NOT NULL,
//     or a subquery correlated to more than its immediate parent (the
//     Query 3 family, where "System A is unable to use antijoin ... even
//     though the NOT NULL constraint is present") — falls back to nested
//     iteration: for each outer tuple the subquery is re-evaluated,
//     accessing inner tables "by index rowid" through whatever indexes
//     exist. Index availability dominates this plan's cost, exactly as
//     the paper's Figures 7–8 show.
package native

import (
	"errors"
	"fmt"
	"strings"

	"nra/internal/expr"
	"nra/internal/index"
	"nra/internal/iomodel"
	"nra/internal/relation"
	"nra/internal/sql"
	"nra/internal/value"
)

// ErrUnsupported reports a query the native executor cannot plan.
var ErrUnsupported = errors.New("native: unsupported query shape")

// Mode says which of System A's two strategies a query got.
type Mode int

// The plan modes.
const (
	ModeUnnested Mode = iota // semijoin/antijoin pipeline
	ModeNestedIteration
)

func (m Mode) String() string {
	if m == ModeUnnested {
		return "unnested semijoin/antijoin pipeline"
	}
	return "nested iteration with index access"
}

// Executor evaluates queries the way System A does.
type Executor struct {
	q    *sql.Query
	mode Mode
	m    *iomodel.Meter

	// nested-iteration state
	blocks map[int]*blockState
}

// SetMeter attaches an I/O meter: sequential charges for the pipeline's
// scans and joins, random-access charges for every index traversal and
// rowid fetch of the nested-iteration plan (the access pattern that
// dominated System A's cost under the paper's cold-cache disk setup).
func (e *Executor) SetMeter(m *iomodel.Meter) { e.m = m }

// blockState is the per-block access machinery for nested iteration.
type blockState struct {
	b        *sql.Block
	rel      *relation.Relation // single-table base relation (prefixed schema)
	allRows  []int              // 0..n-1, the full-scan candidate list
	idx      *index.Index       // chosen index (nil = full scan)
	idxProbe []probe            // one probe per index column, in index order
	rest     []restPred         // all local+correlated predicates, rechecked per candidate
	itemIdx  int                // column of the subquery's select item; -1 for EXISTS blocks
}

// probe is one equality b-column = outer-value source feeding an index
// lookup.
type probe struct {
	col       string     // child column (qualified)
	fromCol   string     // outer column (qualified); "" when constant
	fromBlock *sql.Block // owning block of fromCol
	fromIdx   int        // column index of fromCol in its block schema
	constVal  value.Value
}

// restPred is a predicate evaluated per candidate row in the
// (ancestors..., candidate) environment.
type restPred struct {
	compiled *expr.Compiled
}

// New plans a query natively.
func New(q *sql.Query) (*Executor, error) {
	for _, b := range q.Blocks {
		if len(b.Other) > 0 {
			return nil, fmt.Errorf("%w: non-conjunctive subquery placement", ErrUnsupported)
		}
		if b.ComplexItems {
			return nil, fmt.Errorf("%w: subqueries in the select list", ErrUnsupported)
		}
		if len(b.Tables) != 1 && b.Parent != nil {
			return nil, fmt.Errorf("%w: multi-table subquery block", ErrUnsupported)
		}
		for _, l := range b.Links {
			if l.Pred.Left != nil {
				switch l.Pred.Left.(type) {
				case *sql.ColRef, *sql.Lit:
				default:
					return nil, fmt.Errorf("%w: linking attribute %s", ErrUnsupported, l.Pred.Left)
				}
			}
			switch l.Kind {
			case sql.Exists, sql.NotExists:
			case sql.CmpScalar:
				if _, ok := l.Child.Agg(); !ok {
					return nil, fmt.Errorf("%w: scalar subquery without a single aggregate", ErrUnsupported)
				}
			default:
				if _, err := q.LinkedAttr(l.Child); err != nil {
					return nil, fmt.Errorf("%w: %v", ErrUnsupported, err)
				}
			}
		}
	}
	e := &Executor{q: q, blocks: make(map[int]*blockState)}
	if e.pipelineApplicable() {
		e.mode = ModeUnnested
	} else {
		e.mode = ModeNestedIteration
	}
	return e, nil
}

// Mode reports the chosen strategy.
func (e *Executor) Mode() Mode { return e.mode }

// Explain describes the plan.
func (e *Executor) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "native (System A) plan: %s\n", e.mode)
	if e.mode == ModeNestedIteration {
		for _, blk := range e.q.Blocks {
			if blk.Parent == nil {
				continue
			}
			st, err := e.blockState(blk)
			if err != nil {
				continue
			}
			access := "full scan"
			if st.idx != nil {
				access = "index on (" + strings.Join(st.idx.Columns(), ", ") + ")"
			}
			fmt.Fprintf(&b, "  block %d (%s): %s\n", blk.ID, blk.Tables[0].Ref.Table, access)
		}
	}
	return b.String()
}

// pipelineApplicable checks the Query-2a conditions: linear query, each
// block correlated only to its immediate parent, linking attributes in
// the immediate parent, and every linking operator unnestable.
func (e *Executor) pipelineApplicable() bool {
	b := e.q.Root
	for {
		if len(b.Links) == 0 {
			return len(b.Children) == 0
		}
		if len(b.Links) != 1 || len(b.Children) != 1 {
			return false
		}
		child := b.Links[0].Child
		// Correlation, if any, must target the immediate parent only; an
		// uncorrelated child unnests too (semi/antijoin on the θ condition
		// alone).
		for _, cp := range child.Corr {
			for outer := range cp.Outers {
				if outer != b.ID {
					return false
				}
			}
		}
		if !e.unnestable(b.Links[0], b) {
			return false
		}
		b = child
	}
}

// unnestable reports whether the linking operator can become a
// semijoin/antijoin. Negative quantified operators additionally require
// NOT NULL on both sides (§2's counterexample; §5.2's Query 1 note).
func (e *Executor) unnestable(l *sql.LinkEdge, parent *sql.Block) bool {
	switch l.Kind {
	case sql.CmpScalar:
		// System A evaluates correlated scalar aggregates by nested
		// iteration (unnesting them needs the group-by machinery of
		// Kim/Dayal, outside this baseline's scope).
		return false
	case sql.Exists, sql.NotExists, sql.In, sql.CmpSome:
		if l.Kind != sql.Exists && l.Kind != sql.NotExists {
			if c, ok := l.Pred.Left.(*sql.ColRef); ok {
				if _, resolved := e.q.Resolve(c); !resolved {
					return false
				}
			}
		}
		return true
	case sql.NotIn, sql.CmpAll:
		// Linked attribute NOT NULL?
		la, err := e.q.LinkedAttr(l.Child)
		if err != nil {
			return false
		}
		if !e.colNotNull(l.Child, la) {
			return false
		}
		// Linking attribute NOT NULL (or a non-NULL constant)?
		switch left := l.Pred.Left.(type) {
		case *sql.Lit:
			return !left.V.IsNull()
		case *sql.ColRef:
			r, ok := e.q.Resolve(left)
			if !ok {
				return false
			}
			return e.colNotNull(r.Block, r.Name)
		}
		return false
	}
	return false
}

func (e *Executor) colNotNull(b *sql.Block, qualified string) bool {
	for _, bt := range b.Tables {
		if bt.Schema.ColIndex(qualified) >= 0 {
			return bt.Table.IsNotNull(unqualify(qualified))
		}
	}
	return false
}

func unqualify(name string) string {
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '.' {
			return name[i+1:]
		}
	}
	return name
}
