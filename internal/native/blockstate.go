package native

import (
	"nra/internal/expr"
	"nra/internal/relation"
	"nra/internal/sql"
)

// blockState builds (and caches) the access machinery for a subquery
// block in nested-iteration mode: the base relation, the compiled
// residual predicates, and the best matching index — the longest index of
// the block's table whose every column is covered by an equality
// predicate (correlated or constant). This mirrors System A's behaviour
// in §5.2: the combined (l_partkey, l_suppkey) index is used when both
// correlations are equalities (Query 3a(a)/(c)), the single l_suppkey
// index when p_partkey <> l_partkey demotes the first column
// (Query 3a(b)), and a full scan when nothing matches.
func (e *Executor) blockState(b *sql.Block) (*blockState, error) {
	if st, ok := e.blocks[b.ID]; ok {
		return st, nil
	}
	bt := b.Tables[0]
	st := &blockState{
		b:       b,
		rel:     &relation.Relation{Schema: bt.Schema, Tuples: bt.Table.Rel.Tuples},
		itemIdx: -1,
	}
	st.allRows = make([]int, st.rel.Len())
	for i := range st.allRows {
		st.allRows[i] = i
	}

	// Environment: the ancestor chain outermost-first, then this block.
	var chain []*sql.Block
	for blk := b; blk != nil; blk = blk.Parent {
		chain = append([]*sql.Block{blk}, chain...)
	}
	env := expr.NewEnv()
	for _, blk := range chain {
		env = env.Push(blk.Schema)
	}

	// Compile every local and correlated conjunct as a residual check.
	var conjuncts []sql.Expr
	conjuncts = append(conjuncts, b.Local...)
	for _, cp := range b.Corr {
		conjuncts = append(conjuncts, cp.E)
	}
	for _, c := range conjuncts {
		le, err := e.q.Lower(c)
		if err != nil {
			return nil, err
		}
		compiled, err := expr.CompileEnv(le, env)
		if err != nil {
			return nil, err
		}
		st.rest = append(st.rest, restPred{compiled: compiled})
	}

	// Collect equality probes for index matching.
	probes := e.collectProbes(b)

	// Choose the longest fully covered index.
	best := -1
	var bestProbe []probe
	for _, cols := range bt.Table.Indexes() {
		cover := make([]probe, 0, len(cols))
		ok := true
		for _, ic := range cols {
			found := false
			for _, pr := range probes {
				if unqualify(pr.col) == unqualify(ic) {
					cover = append(cover, pr)
					found = true
					break
				}
			}
			if !found {
				ok = false
				break
			}
		}
		if ok && len(cols) > best {
			best = len(cols)
			bestProbe = cover
			st.idx = bt.Table.Index(cols...)
		}
	}
	st.idxProbe = bestProbe

	// Select-item column for quantified linking predicates.
	if !b.Sel.Star && len(b.Sel.Items) == 1 {
		if c, ok := b.Sel.Items[0].Expr.(*sql.ColRef); ok {
			if r, resolved := e.q.Resolve(c); resolved && r.Block == b {
				st.itemIdx = b.Schema.ColIndex(r.Name)
			}
		}
	}

	e.blocks[b.ID] = st
	return st, nil
}

// collectProbes extracts equality predicates usable as index keys:
// local "col = constant" and correlated "col = outerCol" conjuncts.
func (e *Executor) collectProbes(b *sql.Block) []probe {
	var probes []probe
	addLocal := func(col *sql.ColRef, lit *sql.Lit) {
		r, ok := e.q.Resolve(col)
		if !ok || r.Block != b {
			return
		}
		probes = append(probes, probe{col: r.Name, constVal: lit.V})
	}
	for _, l := range b.Local {
		bin, ok := l.(*sql.BinOp)
		if !ok || bin.Op != "=" {
			continue
		}
		if c, okc := bin.L.(*sql.ColRef); okc {
			if lit, okl := bin.R.(*sql.Lit); okl {
				addLocal(c, lit)
			}
		}
		if c, okc := bin.R.(*sql.ColRef); okc {
			if lit, okl := bin.L.(*sql.Lit); okl {
				addLocal(c, lit)
			}
		}
	}
	addCorr := func(inner, outer *sql.ColRef) bool {
		ri, iok := e.q.Resolve(inner)
		ro, ook := e.q.Resolve(outer)
		if !iok || !ook || ri.Block != b || ro.Block == b {
			return false
		}
		probes = append(probes, probe{
			col:       ri.Name,
			fromCol:   ro.Name,
			fromBlock: ro.Block,
			fromIdx:   ro.Block.Schema.ColIndex(ro.Name),
		})
		return true
	}
	for _, cp := range b.Corr {
		bin, ok := cp.E.(*sql.BinOp)
		if !ok || bin.Op != "=" {
			continue
		}
		lc, lok := bin.L.(*sql.ColRef)
		rc, rok := bin.R.(*sql.ColRef)
		if !lok || !rok {
			continue
		}
		if !addCorr(lc, rc) {
			addCorr(rc, lc)
		}
	}
	return probes
}

// DropBlockCache invalidates cached block states (after index changes).
func (e *Executor) DropBlockCache() { e.blocks = nil }
