package native

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"nra/internal/catalog"
	"nra/internal/naive"
	"nra/internal/relation"
	"nra/internal/sql"
)

func testCatalog(t testing.TB, notNull bool) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	r := relation.MustFromRows("R", []string{"A", "B", "C", "D"},
		[]any{1, 2, 3, 1},
		[]any{5, 6, 7, 2},
		[]any{10, 2, 3, 3},
		[]any{7, 4, 5, 4},
	)
	s := relation.MustFromRows("S", []string{"E", "F", "G", "H", "I"},
		[]any{2, 5, 1, 8, 1},
		[]any{4, 5, 1, 2, 2},
		[]any{6, 5, 2, 9, 3},
		[]any{9, 7, 3, 5, 4},
	)
	tt := relation.MustFromRows("T", []string{"J", "K", "L"},
		[]any{7, 3, 1},
		[]any{9, 1, 2},
		[]any{1, 7, 4},
	)
	for _, def := range []struct {
		name string
		rel  *relation.Relation
		pk   string
	}{{"R", r, "D"}, {"S", s, "I"}, {"T", tt, "L"}} {
		tbl, err := cat.Create(def.name, def.rel, def.pk)
		if err != nil {
			t.Fatal(err)
		}
		if notNull {
			for _, c := range def.rel.Schema.Cols {
				if err := tbl.SetNotNull(c.Name); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return cat
}

func analyze(t testing.TB, cat *catalog.Catalog, src string) *sql.Query {
	t.Helper()
	sel, err := sql.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	q, err := sql.Analyze(sel, cat)
	if err != nil {
		t.Fatalf("analyze %q: %v", src, err)
	}
	return q
}

func checkAgainstReference(t *testing.T, cat *catalog.Catalog, src string) *Executor {
	t.Helper()
	q := analyze(t, cat, src)
	want, err := naive.Evaluate(q)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	ex, err := New(q)
	if err != nil {
		t.Fatalf("plan %q: %v", src, err)
	}
	got, err := ex.Execute()
	if err != nil {
		t.Fatalf("execute %q: %v", src, err)
	}
	if !got.EqualSet(want) {
		t.Fatalf("native differs from reference for\n  %s\nreference (%d rows):\n%s\ngot (%d rows):\n%s",
			src, want.Len(), want, got.Len(), got)
	}
	return ex
}

func TestModeSelection(t *testing.T) {
	withNN := testCatalog(t, true)
	without := testCatalog(t, false)

	cases := []struct {
		name string
		src  string
		cat  *catalog.Catalog
		want Mode
	}{
		{
			// Query 2a shape: mixed ANY + NOT EXISTS, linearly correlated.
			name: "positive pipeline",
			src: `select B from R where R.A < any (select S.E from S where S.G = R.D and not exists
				(select * from T where T.K = S.G))`,
			cat:  without,
			want: ModeUnnested,
		},
		{
			// Query 1 with NOT NULL: antijoin is legal.
			name: "all with not null",
			src:  "select B from R where R.A > all (select S.E from S where S.G = R.D)",
			cat:  withNN,
			want: ModeUnnested,
		},
		{
			// Query 1 without NOT NULL: "if the constraint is dropped ...
			// antijoin is not used".
			name: "all without not null",
			src:  "select B from R where R.A > all (select S.E from S where S.G = R.D)",
			cat:  without,
			want: ModeNestedIteration,
		},
		{
			// Query 3 shape: innermost correlated to both outer blocks —
			// System A cannot unnest even with NOT NULL.
			name: "double correlation",
			src: `select B from R where R.A > all (select S.E from S where S.G = R.D and exists
				(select * from T where T.K = R.C and T.J = S.F))`,
			cat:  withNN,
			want: ModeNestedIteration,
		},
		{
			name: "tree query",
			src: `select B from R where exists (select * from S where S.G = R.D)
				and exists (select * from T where T.K = R.C)`,
			cat:  withNN,
			want: ModeNestedIteration,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ex := checkAgainstReference(t, tc.cat, tc.src)
			if ex.Mode() != tc.want {
				t.Fatalf("mode = %v, want %v", ex.Mode(), tc.want)
			}
		})
	}
}

func TestExplainMentionsIndexes(t *testing.T) {
	cat := testCatalog(t, false)
	q := analyze(t, cat, "select B from R where R.A > all (select S.E from S where S.G = R.D)")
	ex, err := New(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Execute(); err != nil {
		t.Fatal(err)
	}
	out := ex.Explain()
	if !strings.Contains(out, "nested iteration") {
		t.Fatalf("explain: %s", out)
	}
}

func TestIndexChoicePrefersCoveredCombined(t *testing.T) {
	cat := testCatalog(t, false)
	tbl, _ := cat.Table("S")
	if _, err := tbl.CreateIndex("G"); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.CreateIndex("G", "F"); err != nil {
		t.Fatal(err)
	}
	// Both S.G = R.D and S.F = 5 are equality probes → combined index wins.
	q := analyze(t, cat, "select B from R where R.A > all (select S.E from S where S.G = R.D and S.F = 5)")
	ex, err := New(q)
	if err != nil {
		t.Fatal(err)
	}
	ex.blocks = map[int]*blockState{}
	st, err := ex.blockState(q.Root.Links[0].Child)
	if err != nil {
		t.Fatal(err)
	}
	if st.idx == nil || len(st.idx.Columns()) != 2 {
		t.Fatalf("expected the combined (G,F) index, got %v", st.idx)
	}
	// A non-equality correlation demotes to the single-column index
	// (the paper's Query 3a(b) effect).
	q2 := analyze(t, cat, "select B from R where R.A > all (select S.E from S where S.G <> R.D and S.F = 5)")
	ex2, err := New(q2)
	if err != nil {
		t.Fatal(err)
	}
	ex2.blocks = map[int]*blockState{}
	st2, err := ex2.blockState(q2.Root.Links[0].Child)
	if err != nil {
		t.Fatal(err)
	}
	if st2.idx != nil && len(st2.idx.Columns()) == 2 {
		t.Fatalf("combined index must not be usable: %v", st2.idx.Columns())
	}
}

// TestDifferentialNative reruns the random query workload against the
// reference evaluator with and without NOT NULL constraints (the
// constraint changes the plan but must never change the answer).
func TestDifferentialNative(t *testing.T) {
	iters := 300
	if testing.Short() {
		iters = 50
	}
	for seed := 0; seed < iters; seed++ {
		rng := rand.New(rand.NewSource(int64(7_000_000 + seed)))
		cat, hasNulls := randCatalog(t, rng)
		g := &queryGen{rng: rng}
		src := g.query(1 + rng.Intn(2))

		sel, err := sql.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: parse %q: %v", seed, src, err)
		}
		q, err := sql.Analyze(sel, cat)
		if err != nil {
			t.Fatalf("seed %d: analyze %q: %v", seed, src, err)
		}
		want, err := naive.Evaluate(q)
		if err != nil {
			t.Fatalf("seed %d: reference %q: %v", seed, src, err)
		}
		ex, err := New(q)
		if err != nil {
			t.Fatalf("seed %d: plan %q: %v", seed, src, err)
		}
		got, err := ex.Execute()
		if err != nil {
			t.Fatalf("seed %d: execute %q: %v", seed, src, err)
		}
		if !got.EqualSet(want) {
			t.Fatalf("seed %d (mode %v, nulls %v): native differs for\n  %s\nreference (%d rows):\n%s\ngot (%d rows):\n%s",
				seed, ex.Mode(), hasNulls, src, want.Len(), want, got.Len(), got)
		}
	}
}

// randCatalog mirrors core's random catalog, optionally NULL-free with
// NOT NULL constraints declared (to exercise the pipeline mode).
func randCatalog(t testing.TB, rng *rand.Rand) (*catalog.Catalog, bool) {
	t.Helper()
	cat := catalog.New()
	nullFree := rng.Intn(2) == 0
	for _, name := range []string{"A", "B", "C"} {
		rows := 3 + rng.Intn(8)
		cols := []string{"k", "w", "x", "y"}
		var data [][]any
		for r := 0; r < rows; r++ {
			row := []any{r}
			for c := 1; c < len(cols); c++ {
				if !nullFree && rng.Float64() < 0.18 {
					row = append(row, nil)
				} else {
					row = append(row, rng.Intn(5))
				}
			}
			data = append(data, row)
		}
		rel := relation.MustFromRows(name, cols, data...)
		tbl, err := cat.Create(name, rel, "k")
		if err != nil {
			t.Fatal(err)
		}
		if nullFree {
			for _, c := range cols {
				if err := tbl.SetNotNull(c); err != nil {
					t.Fatal(err)
				}
			}
		}
		// Random secondary indexes, so index and scan paths both run.
		for _, c := range cols[1:] {
			if rng.Float64() < 0.5 {
				if _, err := tbl.CreateIndex(c); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return cat, !nullFree
}

// queryGen is duplicated from core's differential test (kept local so the
// packages stay independent).
type queryGen struct {
	rng   *rand.Rand
	alias int
}

var genTables = []string{"A", "B", "C"}
var genCols = []string{"w", "x", "y"}
var genOps = []string{"=", "<>", "<", "<=", ">", ">="}

func (g *queryGen) nextAlias() string {
	g.alias++
	return fmt.Sprintf("t%d", g.alias)
}

func (g *queryGen) query(depth int) string {
	alias := g.nextAlias()
	table := genTables[g.rng.Intn(len(genTables))]
	sel := fmt.Sprintf("%s.%s", alias, genCols[g.rng.Intn(len(genCols))])
	where := g.where(alias, nil, depth)
	q := fmt.Sprintf("select %s from %s %s", sel, table, alias)
	if where != "" {
		q += " where " + where
	}
	return q
}

func (g *queryGen) where(alias string, outer []string, depth int) string {
	var conj []string
	n := g.rng.Intn(2)
	for i := 0; i < n; i++ {
		conj = append(conj, fmt.Sprintf("%s.%s %s %d",
			alias, genCols[g.rng.Intn(len(genCols))],
			genOps[g.rng.Intn(len(genOps))], g.rng.Intn(5)))
	}
	for _, o := range outer {
		if g.rng.Float64() < 0.7 {
			conj = append(conj, fmt.Sprintf("%s.%s %s %s.%s",
				alias, genCols[g.rng.Intn(len(genCols))],
				genOps[g.rng.Intn(3)],
				o, genCols[g.rng.Intn(len(genCols))]))
		}
	}
	if depth > 0 {
		kids := 1
		if g.rng.Float64() < 0.25 {
			kids = 2
		}
		for i := 0; i < kids; i++ {
			conj = append(conj, g.linkPredicate(alias, outer, depth-1))
		}
	}
	return strings.Join(conj, " and ")
}

func (g *queryGen) linkPredicate(alias string, outer []string, depth int) string {
	child := g.nextAlias()
	table := genTables[g.rng.Intn(len(genTables))]
	visible := append(append([]string{}, outer...), alias)
	childWhere := g.where(child, visible, depth)
	whereClause := ""
	if childWhere != "" {
		whereClause = " where " + childWhere
	}
	linked := fmt.Sprintf("%s.%s", child, genCols[g.rng.Intn(len(genCols))])

	switch g.rng.Intn(7) {
	case 0:
		return fmt.Sprintf("exists (select * from %s %s%s)", table, child, whereClause)
	case 1:
		return fmt.Sprintf("not exists (select * from %s %s%s)", table, child, whereClause)
	case 2:
		return fmt.Sprintf("%s.%s in (select %s from %s %s%s)",
			alias, genCols[g.rng.Intn(len(genCols))], linked, table, child, whereClause)
	case 3:
		return fmt.Sprintf("%s.%s not in (select %s from %s %s%s)",
			alias, genCols[g.rng.Intn(len(genCols))], linked, table, child, whereClause)
	case 4:
		return fmt.Sprintf("%s.%s %s some (select %s from %s %s%s)",
			alias, genCols[g.rng.Intn(len(genCols))],
			genOps[g.rng.Intn(len(genOps))], linked, table, child, whereClause)
	case 5:
		agg := []string{"count(*)", "min(%s)", "max(%s)", "sum(%s)", "avg(%s)", "count(%s)"}[g.rng.Intn(6)]
		if strings.Contains(agg, "%s") {
			agg = fmt.Sprintf(agg, linked)
		}
		return fmt.Sprintf("%s.%s %s (select %s from %s %s%s)",
			alias, genCols[g.rng.Intn(len(genCols))],
			genOps[g.rng.Intn(len(genOps))], agg, table, child, whereClause)
	default:
		return fmt.Sprintf("%s.%s %s all (select %s from %s %s%s)",
			alias, genCols[g.rng.Intn(len(genCols))],
			genOps[g.rng.Intn(len(genOps))], linked, table, child, whereClause)
	}
}
