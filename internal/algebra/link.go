package algebra

import (
	"fmt"

	"nra/internal/expr"
	"nra/internal/relation"
	"nra/internal/value"
)

// Quant is the quantifier of a quantified linking predicate.
type Quant uint8

// SOME/ANY and ALL.
const (
	Some Quant = iota
	All
)

// String returns "SOME" or "ALL".
func (q Quant) String() string {
	if q == Some {
		return "SOME"
	}
	return "ALL"
}

// EmptyTest selects the set-emptiness forms of Definition 4:
// {B} = ∅ (NOT EXISTS) and {B} ≠ ∅ (EXISTS).
type EmptyTest uint8

// The emptiness test variants. NoEmptyTest means the predicate is the
// quantified comparison form A θ L {B}.
const (
	NoEmptyTest EmptyTest = iota
	IsEmpty
	NotEmpty
)

// LinkPred is a linking predicate over a one-level nested attribute
// (Definition 4). Presence names the inner column — always the inner
// relation's primary key — whose NULL marks a padding tuple produced by a
// left outer join or a pseudo-selection; such tuples are not elements of
// the set. This built-in presence filtering realises the paper's
// "… ∨ T.L is null" side conditions without special-casing.
type LinkPred struct {
	Attr     string       // linking attribute A; unused for emptiness tests
	Const    *value.Value // constant linking value (e.g. "5 < ALL (...)"); overrides Attr
	Op       expr.CmpOp   // θ
	Quant    Quant        // SOME or ALL
	Sub      string       // name of the nested attribute
	Linked   string       // linked attribute B inside Sub
	Presence string       // inner PK column inside Sub; "" = all members real
	Empty    EmptyTest
	// Agg turns the predicate into a scalar-aggregate comparison
	// A θ agg{B}: the group's real members are folded by the aggregate
	// and compared once (Quant is ignored). The empty group behaves per
	// SQL: COUNT yields 0, the others NULL (making θ Unknown) — which is
	// exactly why the max/count rewrites of §2 are not equivalent to
	// quantified predicates.
	Agg AggFunc
	// TwoValued evaluates every member (and aggregate) comparison under
	// 2VL: a comparison involving NULL is False, never Unknown. The
	// predicate's verdict is then always True or False.
	TwoValued bool
	// Negate classically negates the final verdict — how 2VL planners
	// encode NOT IN (¬ =SOME) and NOT-wrapped quantifiers, whose 3VL
	// duals are not 2VL-equivalent.
	Negate bool
}

// SomePred builds A θ SOME {B}. (IN is =SOME.)
func SomePred(attr string, op expr.CmpOp, sub, linked, presence string) LinkPred {
	return LinkPred{Attr: attr, Op: op, Quant: Some, Sub: sub, Linked: linked, Presence: presence}
}

// AllPred builds A θ ALL {B}. (NOT IN is <>ALL.)
func AllPred(attr string, op expr.CmpOp, sub, linked, presence string) LinkPred {
	return LinkPred{Attr: attr, Op: op, Quant: All, Sub: sub, Linked: linked, Presence: presence}
}

// ExistsPred builds {B} ≠ ∅.
func ExistsPred(sub, presence string) LinkPred {
	return LinkPred{Sub: sub, Presence: presence, Empty: NotEmpty}
}

// NotExistsPred builds {B} = ∅.
func NotExistsPred(sub, presence string) LinkPred {
	return LinkPred{Sub: sub, Presence: presence, Empty: IsEmpty}
}

// AggPred builds the scalar-aggregate comparison A θ agg{B}. For
// COUNT(*), linked may be empty.
func AggPred(attr string, op expr.CmpOp, fn AggFunc, sub, linked, presence string) LinkPred {
	return LinkPred{Attr: attr, Op: op, Agg: fn, Sub: sub, Linked: linked, Presence: presence}
}

// String renders the predicate in the paper's notation, e.g.
// "S.H >ALL {T.J}" or "{lineitem} = ∅".
func (p LinkPred) String() string {
	switch p.Empty {
	case IsEmpty:
		return fmt.Sprintf("{%s} = ∅", p.Sub)
	case NotEmpty:
		return fmt.Sprintf("{%s} ≠ ∅", p.Sub)
	}
	attr := p.Attr
	if p.Const != nil {
		attr = p.Const.String()
	}
	if p.Agg != AggNone {
		return fmt.Sprintf("%s %s %s{%s}", attr, p.Op, p.Agg, p.Linked)
	}
	return fmt.Sprintf("%s %s%s {%s}", attr, p.Op, p.Quant, p.Linked)
}

// Bound is a LinkPred resolved against a concrete schema, ready for
// per-tuple evaluation.
type Bound struct {
	pred            LinkPred
	attrIdx, subIdx int
	linkedIdx       int
	presIdx         int // -1 when Presence == ""
}

// Bind resolves the predicate's attribute references against s.
func (p LinkPred) Bind(s *relation.Schema) (*Bound, error) {
	b := &Bound{pred: p, attrIdx: -1, presIdx: -1, linkedIdx: -1}
	b.subIdx = s.SubIndex(p.Sub)
	if b.subIdx < 0 {
		return nil, fmt.Errorf("link: no nested attribute %q in %s", p.Sub, s)
	}
	inner := s.Subs[b.subIdx].Schema
	if p.Presence != "" {
		b.presIdx = inner.ColIndex(p.Presence)
		if b.presIdx < 0 {
			return nil, fmt.Errorf("link: presence column %q not in nested attribute %s", p.Presence, inner)
		}
	}
	if p.Empty == NoEmptyTest {
		if p.Const == nil {
			b.attrIdx = s.ColIndex(p.Attr)
			if b.attrIdx < 0 {
				return nil, fmt.Errorf("link: linking attribute %q not in %s", p.Attr, s)
			}
		}
		if p.Agg != AggCountStar {
			b.linkedIdx = inner.ColIndex(p.Linked)
			if b.linkedIdx < 0 {
				return nil, fmt.Errorf("link: linked attribute %q not in nested attribute %s", p.Linked, inner)
			}
		}
	}
	return b, nil
}

// Eval evaluates the linking predicate on one nested tuple under SQL
// 3VL semantics:
//
//   - θ ALL over the empty set is True; False dominates; otherwise a NULL
//     comparison makes the result Unknown.
//   - θ SOME over the empty set is False; True dominates; otherwise a NULL
//     comparison makes the result Unknown.
//   - The emptiness tests (EXISTS / NOT EXISTS) are two-valued.
//
// Members whose presence column is NULL are padding, not set elements.
//
// With TwoValued set, each member (or aggregate) comparison collapses
// Unknown to False before the quantifier fold; with Negate set the final
// verdict is classically negated.
func (b *Bound) Eval(t relation.Tuple) (value.Tri, error) {
	tri, err := b.eval(t)
	if err != nil {
		return value.Unknown, err
	}
	if b.pred.Negate {
		tri = tri.Not()
	}
	return tri, nil
}

// cmp applies θ to one pair, collapsing Unknown under 2VL.
func (b *Bound) cmp(a, m value.Value) (value.Tri, error) {
	tri, err := b.pred.Op.Apply(a, m)
	if err != nil {
		return value.Unknown, err
	}
	if b.pred.TwoValued && tri == value.Unknown {
		tri = value.False
	}
	return tri, nil
}

func (b *Bound) eval(t relation.Tuple) (value.Tri, error) {
	g := t.Groups[b.subIdx]
	switch b.pred.Empty {
	case IsEmpty:
		return value.TriOf(b.countReal(g) == 0), nil
	case NotEmpty:
		return value.TriOf(b.countReal(g) > 0), nil
	}
	var a value.Value
	if b.pred.Const != nil {
		a = *b.pred.Const
	} else {
		a = t.Atoms[b.attrIdx]
	}
	if b.pred.Agg != AggNone {
		state := NewAggState(b.pred.Agg)
		if g != nil {
			for _, m := range g.Tuples {
				if b.presIdx >= 0 && m.Atoms[b.presIdx].IsNull() {
					continue
				}
				if b.pred.Agg == AggCountStar {
					state.AddRow()
					continue
				}
				if err := state.Add(m.Atoms[b.linkedIdx]); err != nil {
					return value.Unknown, err
				}
			}
		}
		res := state.Result()
		tri, err := b.pred.Op.Apply(a, res)
		if err != nil {
			return value.Unknown, err
		}
		// 2VL collapses a NULL comparison to False — except when the NULL
		// is the aggregate itself (an empty-group SUM/AVG/MIN/MAX), a
		// value the base data never held. Keeping 3VL's Unknown there
		// makes 2VL ≡ 3VL on NULL-free data.
		if b.pred.TwoValued && tri == value.Unknown && !res.IsNull() {
			tri = value.False
		}
		return tri, nil
	}
	if b.pred.Quant == All {
		res := value.True
		if g != nil {
			for _, m := range g.Tuples {
				if b.presIdx >= 0 && m.Atoms[b.presIdx].IsNull() {
					continue
				}
				tri, err := b.cmp(a, m.Atoms[b.linkedIdx])
				if err != nil {
					return value.Unknown, err
				}
				res = res.And(tri)
				if res == value.False {
					return value.False, nil
				}
			}
		}
		return res, nil
	}
	res := value.False
	if g != nil {
		for _, m := range g.Tuples {
			if b.presIdx >= 0 && m.Atoms[b.presIdx].IsNull() {
				continue
			}
			tri, err := b.cmp(a, m.Atoms[b.linkedIdx])
			if err != nil {
				return value.Unknown, err
			}
			res = res.Or(tri)
			if res == value.True {
				return value.True, nil
			}
		}
	}
	return res, nil
}

func (b *Bound) countReal(g *relation.Relation) int {
	if g == nil {
		return 0
	}
	if b.presIdx < 0 {
		return len(g.Tuples)
	}
	n := 0
	for _, m := range g.Tuples {
		if !m.Atoms[b.presIdx].IsNull() {
			n++
		}
	}
	return n
}

// LinkSelect is the strict linking selection σ_C of Definition 5: tuples
// whose linking predicate evaluates to True survive; all others are
// discarded. It is used for the outermost (or all-positive) linking
// predicate, where a failing tuple can never contribute to an answer.
func LinkSelect(r *relation.Relation, p LinkPred) (*relation.Relation, error) {
	b, err := p.Bind(r.Schema)
	if err != nil {
		return nil, err
	}
	out := relation.New(r.Schema)
	for _, t := range r.Tuples {
		tri, err := b.Eval(t)
		if err != nil {
			return nil, err
		}
		if tri.IsTrue() {
			out.Append(t)
		}
	}
	return out, nil
}

// LinkSelectPad is the pseudo-selection σ̄_{C,A} of Definition 5: tuples
// that pass keep their original form; tuples that fail are kept but their
// attributes in pad are replaced with NULL. Because pad always includes
// the failing level's primary key, a padded tuple stops counting as a set
// element one level up — which is what makes negative and mixed linking
// operators composable (the paper's Temp3 example).
func LinkSelectPad(r *relation.Relation, p LinkPred, pad []string) (*relation.Relation, error) {
	b, err := p.Bind(r.Schema)
	if err != nil {
		return nil, err
	}
	padIdx := make([]int, len(pad))
	for i, c := range pad {
		j := r.Schema.ColIndex(c)
		if j < 0 {
			return nil, fmt.Errorf("link: pad column %q not in %s", c, r.Schema)
		}
		padIdx[i] = j
	}
	out := relation.New(r.Schema)
	for _, t := range r.Tuples {
		tri, err := b.Eval(t)
		if err != nil {
			return nil, err
		}
		if tri.IsTrue() {
			out.Append(t)
			continue
		}
		nt := relation.Tuple{Atoms: append([]value.Value(nil), t.Atoms...), Groups: t.Groups}
		for _, j := range padIdx {
			nt.Atoms[j] = value.Null
		}
		out.Append(nt)
	}
	return out, nil
}

// AddGroup attaches the same relation g as a nested attribute of every
// tuple of r — the "virtual Cartesian product" used for non-correlated
// subqueries (§4: "non-correlated subqueries are executed once, and the
// result is used by every tuple"). The group is shared, not copied.
func AddGroup(r *relation.Relation, subName string, g *relation.Relation) *relation.Relation {
	schema := &relation.Schema{Name: r.Schema.Name, Cols: r.Schema.Cols}
	schema.Subs = append(append([]relation.Sub{}, r.Schema.Subs...), relation.Sub{Name: subName, Schema: g.Schema})
	out := relation.New(schema)
	for _, t := range r.Tuples {
		nt := relation.Tuple{Atoms: t.Atoms}
		nt.Groups = append(append([]*relation.Relation{}, t.Groups...), g)
		out.Append(nt)
	}
	return out
}

// Within applies f to the nested relation of the named subschema of every
// tuple, replacing the group with f's result. It is how linking selections
// are applied at depth ≥ 1 on the fused multi-level nests of §4.2.1.
func Within(r *relation.Relation, sub string, f func(*relation.Relation) (*relation.Relation, error)) (*relation.Relation, error) {
	si := r.Schema.SubIndex(sub)
	if si < 0 {
		return nil, fmt.Errorf("within: no subschema %q in %s", sub, r.Schema)
	}
	var newInner *relation.Schema
	out := relation.New(r.Schema)
	for _, t := range r.Tuples {
		g := t.Groups[si]
		if g == nil {
			g = relation.New(r.Schema.Subs[si].Schema)
		}
		ng, err := f(g)
		if err != nil {
			return nil, err
		}
		if newInner == nil {
			newInner = ng.Schema
			schema := &relation.Schema{Name: r.Schema.Name, Cols: r.Schema.Cols}
			schema.Subs = append([]relation.Sub{}, r.Schema.Subs...)
			schema.Subs[si] = relation.Sub{Name: sub, Schema: newInner}
			out.Schema = schema
		}
		nt := relation.Tuple{Atoms: t.Atoms}
		nt.Groups = append([]*relation.Relation{}, t.Groups...)
		nt.Groups[si] = ng
		out.Append(nt)
	}
	return out, nil
}
