package algebra

import (
	"fmt"

	"nra/internal/relation"
	"nra/internal/value"
)

// Project returns π_cols(r) over atomic columns, keeping all subschemas.
// SQL (and the paper's experiments) use multiset semantics, so duplicates
// are preserved; compose with Distinct for set semantics.
func Project(r *relation.Relation, cols ...string) (*relation.Relation, error) {
	return ProjectSubs(r, cols, subNames(r.Schema))
}

// ProjectSubs returns the projection onto the given atomic columns and the
// given subschemas (by name), in the order given.
func ProjectSubs(r *relation.Relation, cols, subs []string) (*relation.Relation, error) {
	colIdx := make([]int, len(cols))
	outSchema := &relation.Schema{Name: r.Schema.Name}
	for i, c := range cols {
		j := r.Schema.ColIndex(c)
		if j < 0 {
			return nil, fmt.Errorf("project: unknown column %q in %s", c, r.Schema)
		}
		colIdx[i] = j
		outSchema.Cols = append(outSchema.Cols, r.Schema.Cols[j])
	}
	subIdx := make([]int, len(subs))
	for i, s := range subs {
		j := r.Schema.SubIndex(s)
		if j < 0 {
			return nil, fmt.Errorf("project: unknown subschema %q in %s", s, r.Schema)
		}
		subIdx[i] = j
		outSchema.Subs = append(outSchema.Subs, r.Schema.Subs[j])
	}
	out := relation.New(outSchema)
	for _, t := range r.Tuples {
		nt := relation.Tuple{Atoms: make([]value.Value, len(colIdx))}
		for i, j := range colIdx {
			nt.Atoms[i] = t.Atoms[j]
		}
		if len(subIdx) > 0 {
			nt.Groups = make([]*relation.Relation, len(subIdx))
			for i, j := range subIdx {
				nt.Groups[i] = t.Groups[j]
			}
		}
		out.Append(nt)
	}
	return out, nil
}

// DropSub removes one subschema (and its groups) from r — the projection
// Algorithm 1 applies right after consuming a nested attribute with a
// linking selection.
func DropSub(r *relation.Relation, sub string) (*relation.Relation, error) {
	var keep []string
	found := false
	for _, s := range r.Schema.Subs {
		if s.Name == sub {
			found = true
			continue
		}
		keep = append(keep, s.Name)
	}
	if !found {
		return nil, fmt.Errorf("dropsub: no subschema %q in %s", sub, r.Schema)
	}
	return ProjectSubs(r, r.Schema.ColNames(), keep)
}

func subNames(s *relation.Schema) []string {
	names := make([]string, len(s.Subs))
	for i, sub := range s.Subs {
		names[i] = sub.Name
	}
	return names
}
