package algebra

// Property-based tests (testing/quick + seeded fuzz loops) for the
// algebraic laws the nested relational approach relies on:
//
//   - hash join ≡ nested-loop join;
//   - semijoin and antijoin partition the left relation;
//   - unnest ∘ nest = projection (on the nested attributes);
//   - the §4.2.4 push-down identity υ_{B},{C}(R ⟕_{A=B} S) = R ⟕ (υ S);
//   - the §4.2.5 positive-operator identity
//     σ_{AθSOME{B}}(υ(R ⟕_C S)) = R ⋉_{C ∧ AθB} S;
//   - set-operation laws under NULL-aware set semantics.

import (
	"math/rand"
	"testing"

	"nra/internal/expr"
	"nra/internal/relation"
	"nra/internal/value"
)

// randRel builds a random flat relation with a unique integer key column
// "p.k" plus small-domain attribute columns (with NULLs).
func randRel(rng *rand.Rand, prefix string, cols int, maxRows int) *relation.Relation {
	names := []string{prefix + ".k"}
	for i := 0; i < cols; i++ {
		names = append(names, prefix+"."+string(rune('a'+i)))
	}
	var rows [][]any
	n := rng.Intn(maxRows + 1)
	for r := 0; r < n; r++ {
		row := []any{r}
		for i := 0; i < cols; i++ {
			if rng.Intn(6) == 0 {
				row = append(row, nil)
			} else {
				row = append(row, rng.Intn(4))
			}
		}
		rows = append(rows, row)
	}
	return relation.MustFromRows(prefix, names, rows...)
}

func TestHashJoinEqualsNestedLoop(t *testing.T) {
	for seed := 0; seed < 200; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		l := randRel(rng, "l", 2, 8)
		r := randRel(rng, "r", 2, 8)

		// Equi + residual condition, in a form the hash path extracts...
		hashCond := expr.And(
			expr.Compare(expr.Eq, expr.Col("l.a"), expr.Col("r.a")),
			expr.Compare(expr.Le, expr.Col("l.b"), expr.Col("r.b")),
		)
		// ...and an equivalent form it cannot (¬(x<>y) ≡ x=y in 3VL for
		// the purposes of a WHERE/ON clause only when non-NULL — so use
		// a both-sides condition the extractor just doesn't recognise:
		// swap into a residual by AND-ing TRUE first keeps extraction, so
		// instead force the nested loop with a non-equi-only condition
		// and compare against a manual hash by adding the equality back
		// as a residual comparison on an expression.
		loopCond := expr.And(
			expr.Compare(expr.Eq,
				expr.Arith{Op: expr.Add, L: expr.Col("l.a"), R: expr.Lit{V: value.Int(0)}},
				expr.Col("r.a")),
			expr.Compare(expr.Le, expr.Col("l.b"), expr.Col("r.b")),
		)

		fast, err := Join(l, r, hashCond)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		slow, err := Join(l, r, loopCond)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !fast.EqualSet(slow) {
			t.Fatalf("seed %d: hash join != nested loop\n%s\nvs\n%s", seed, fast, slow)
		}

		// Same for the outer join.
		fastO, err := LeftOuterJoin(l, r, hashCond)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		slowO, err := LeftOuterJoin(l, r, loopCond)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !fastO.EqualSet(slowO) {
			t.Fatalf("seed %d: outer hash join != outer nested loop", seed)
		}
	}
}

func TestSemiAntiPartition(t *testing.T) {
	conds := []expr.Expr{
		expr.Compare(expr.Eq, expr.Col("l.a"), expr.Col("r.a")),
		expr.Compare(expr.Lt, expr.Col("l.b"), expr.Col("r.b")),
		expr.And(
			expr.Compare(expr.Eq, expr.Col("l.a"), expr.Col("r.a")),
			expr.Compare(expr.Ne, expr.Col("l.b"), expr.Col("r.b"))),
	}
	for seed := 0; seed < 150; seed++ {
		rng := rand.New(rand.NewSource(int64(1000 + seed)))
		l := randRel(rng, "l", 2, 8)
		r := randRel(rng, "r", 2, 8)
		cond := conds[rng.Intn(len(conds))]
		semi, err := SemiJoin(l, r, cond)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		anti, err := AntiJoin(l, r, cond)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if semi.Len()+anti.Len() != l.Len() {
			t.Fatalf("seed %d: semijoin (%d) + antijoin (%d) != |L| (%d)",
				seed, semi.Len(), anti.Len(), l.Len())
		}
		both, err := Union(semi, anti)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !both.EqualSet(Distinct(l)) {
			t.Fatalf("seed %d: semi ∪ anti != L", seed)
		}
	}
}

func TestUnnestNestIsProjection(t *testing.T) {
	for seed := 0; seed < 150; seed++ {
		rng := rand.New(rand.NewSource(int64(2000 + seed)))
		r := randRel(rng, "p", 3, 10)
		n, err := Nest(r, []string{"p.a", "p.b"}, []string{"p.k", "p.c"}, "g")
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		u, err := Unnest(n, "g")
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want, err := Project(r, "p.a", "p.b", "p.k", "p.c")
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !u.EqualSet(want) {
			t.Fatalf("seed %d: unnest∘nest != projection\n%s\nvs\n%s", seed, u, want)
		}
	}
}

// TestNestPushdownIdentity checks §4.2.4's equation on random data:
// nesting after the outer join equals outer-joining the pre-nested child,
// when the nest attribute is the equi-join attribute.
func TestNestPushdownIdentity(t *testing.T) {
	for seed := 0; seed < 150; seed++ {
		rng := rand.New(rand.NewSource(int64(3000 + seed)))
		l := randRel(rng, "l", 1, 8)
		r := randRel(rng, "r", 2, 8)
		cond := expr.Compare(expr.Eq, expr.Col("l.a"), expr.Col("r.a"))

		// Direct: join flat, then nest by all l-columns keeping r-columns.
		joined, err := LeftOuterJoin(l, r, cond)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		direct, err := Nest(joined, []string{"l.k", "l.a"}, []string{"r.k", "r.b"}, "g")
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		// Pushed down: nest the child by its join attribute first.
		nested, err := Nest(r, []string{"r.a"}, []string{"r.k", "r.b"}, "g")
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		pushed, err := LeftOuterJoin(l, nested, cond)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Align shapes: drop the r.a column and normalise empty groups.
		pushedAligned, err := ProjectSubs(pushed, []string{"l.k", "l.a"}, []string{"g"})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		// The two differ only in the empty-set encoding (group of padding
		// tuples vs nil group); compare through the linking predicate,
		// which is the consumer that matters.
		for _, p := range []LinkPred{
			AllPred("l.a", expr.Gt, "g", "r.b", "r.k"),
			SomePred("l.a", expr.Eq, "g", "r.b", "r.k"),
			ExistsPred("g", "r.k"),
		} {
			a, err := LinkSelect(direct, p)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			b, err := LinkSelect(pushedAligned, p)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			da, err := DropSub(a, "g")
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			db, err := DropSub(b, "g")
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if !da.EqualSet(db) {
				t.Fatalf("seed %d (%s): pushdown identity broken\ndirect:\n%s\npushed:\n%s",
					seed, p, da, db)
			}
		}
	}
}

// TestPositiveRewriteIdentity checks §4.2.5's equation on random data:
// σ_{AθSOME{B}}(υ(R ⟕_C S)) = R ⋉_{C ∧ AθB} S.
func TestPositiveRewriteIdentity(t *testing.T) {
	ops := []expr.CmpOp{expr.Eq, expr.Ne, expr.Lt, expr.Le, expr.Gt, expr.Ge}
	for seed := 0; seed < 200; seed++ {
		rng := rand.New(rand.NewSource(int64(4000 + seed)))
		l := randRel(rng, "l", 2, 8)
		r := randRel(rng, "r", 2, 8)
		corr := expr.Compare(expr.Eq, expr.Col("l.a"), expr.Col("r.a"))
		op := ops[rng.Intn(len(ops))]

		// Nested relational form.
		joined, err := LeftOuterJoin(l, r, corr)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		nested, err := Nest(joined, []string{"l.k", "l.a", "l.b"}, []string{"r.k", "r.b"}, "g")
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		sel, err := LinkSelect(nested, SomePred("l.b", op, "g", "r.b", "r.k"))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		nraForm, err := DropSub(sel, "g")
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		// Semijoin form.
		semi, err := SemiJoin(l, r, expr.And(corr, expr.Compare(op, expr.Col("l.b"), expr.Col("r.b"))))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		if !nraForm.EqualSet(semi) {
			t.Fatalf("seed %d (θ=%s): σ_SOME(υ(⟕)) != ⋉\nNRA:\n%s\nsemijoin:\n%s",
				seed, op, nraForm, semi)
		}
	}
}

func TestSetOpLaws(t *testing.T) {
	for seed := 0; seed < 150; seed++ {
		rng := rand.New(rand.NewSource(int64(5000 + seed)))
		mk := func() *relation.Relation {
			var rows [][]any
			for i := 0; i < rng.Intn(10); i++ {
				cell := any(rng.Intn(4))
				if rng.Intn(5) == 0 {
					cell = nil
				}
				rows = append(rows, []any{cell})
			}
			return relation.MustFromRows("s", []string{"x"}, rows...)
		}
		a, b := mk(), mk()
		inter, err := Intersect(a, b)
		if err != nil {
			t.Fatal(err)
		}
		diff, err := Difference(a, b)
		if err != nil {
			t.Fatal(err)
		}
		// (A ∩ B) ∪ (A − B) = distinct(A)
		back, err := Union(inter, diff)
		if err != nil {
			t.Fatal(err)
		}
		if !back.EqualSet(Distinct(a)) {
			t.Fatalf("seed %d: (A∩B) ∪ (A−B) != A", seed)
		}
		// Commutativity of ∩ and ∪.
		interBA, _ := Intersect(b, a)
		if !inter.EqualSet(interBA) {
			t.Fatalf("seed %d: ∩ not commutative", seed)
		}
		uAB, _ := Union(a, b)
		uBA, _ := Union(b, a)
		if !uAB.EqualSet(uBA) {
			t.Fatalf("seed %d: ∪ not commutative", seed)
		}
		// A − B and A ∩ B are disjoint.
		redisj, _ := Intersect(inter, diff)
		if redisj.Len() != 0 {
			t.Fatalf("seed %d: (A∩B) ∩ (A−B) nonempty", seed)
		}
	}
}

// TestLinkQuantifierDuality: ¬(A θ SOME S) = A ¬θ ALL S under 3VL, which
// is the identity the analyzer's NOT-normalisation uses.
func TestLinkQuantifierDuality(t *testing.T) {
	ops := []expr.CmpOp{expr.Eq, expr.Ne, expr.Lt, expr.Le, expr.Gt, expr.Ge}
	for seed := 0; seed < 200; seed++ {
		rng := rand.New(rand.NewSource(int64(6000 + seed)))
		set := randRel(rng, "s", 1, 6)
		outer := randRel(rng, "o", 1, 6)
		g := AddGroup(outer, "g", set)
		op := ops[rng.Intn(len(ops))]
		some := SomePred("o.a", op, "g", "s.a", "s.k")
		all := AllPred("o.a", op.Negate(), "g", "s.a", "s.k")
		bs, err := some.Bind(g.Schema)
		if err != nil {
			t.Fatal(err)
		}
		ba, err := all.Bind(g.Schema)
		if err != nil {
			t.Fatal(err)
		}
		for i, tup := range g.Tuples {
			vs, err := bs.Eval(tup)
			if err != nil {
				t.Fatal(err)
			}
			va, err := ba.Eval(tup)
			if err != nil {
				t.Fatal(err)
			}
			if vs.Not() != va {
				t.Fatalf("seed %d tuple %d: ¬(θ SOME)=%v but ¬θ ALL=%v", seed, i, vs.Not(), va)
			}
		}
	}
}
