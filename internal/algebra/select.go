// Package algebra implements the extended nested relational algebra of
// Section 3 of Cao & Badia (SIGMOD 2005): the classical operators
// (selection, projection, product, joins, set operations) lifted to nested
// relations, plus the paper's re-parameterised nest operator υ_{N1,N2},
// unnest, and the linking selection in both its strict (σ) and
// pseudo-selection (σ̄) forms.
//
// All operators are pure: they never mutate their inputs. Tuples that pass
// through unchanged are shared structurally, so the materialised style
// stays cheap for the in-memory engine.
package algebra

import (
	"fmt"

	"nra/internal/expr"
	"nra/internal/relation"
)

// Select returns σ_pred(r): the tuples for which pred evaluates to True
// (3VL: both False and Unknown are rejected).
func Select(r *relation.Relation, pred expr.Expr) (*relation.Relation, error) {
	c, err := expr.Compile(pred, r.Schema)
	if err != nil {
		return nil, fmt.Errorf("select: %w", err)
	}
	out := relation.New(r.Schema)
	for _, t := range r.Tuples {
		tri, err := c.Truth(t)
		if err != nil {
			return nil, fmt.Errorf("select: %w", err)
		}
		if tri.IsTrue() {
			out.Append(t)
		}
	}
	return out, nil
}

// Distinct returns r with duplicate tuples removed (set semantics,
// comparing nested groups as sets).
func Distinct(r *relation.Relation) *relation.Relation {
	out := relation.New(r.Schema)
	seen := make(map[string]struct{}, len(r.Tuples))
	for _, t := range r.Tuples {
		k := t.Key()
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out.Append(t)
	}
	return out
}
