package algebra

import (
	"testing"

	"nra/internal/expr"
	"nra/internal/relation"
	"nra/internal/value"
)

func mustEq(t *testing.T, got, want *relation.Relation, msg string) {
	t.Helper()
	if !got.EqualSet(want) {
		t.Fatalf("%s:\ngot:\n%swant:\n%s", msg, got, want)
	}
}

func relR() *relation.Relation {
	return relation.MustFromRows("R", []string{"R.A", "R.B", "R.D"},
		[]any{1, 2, 1},
		[]any{5, 6, 2},
		[]any{10, 2, 3},
		[]any{nil, nil, 4},
	)
}

func relS() *relation.Relation {
	return relation.MustFromRows("S", []string{"S.E", "S.G", "S.I"},
		[]any{2, 1, 1},
		[]any{4, 1, 2},
		[]any{6, 2, 3},
		[]any{nil, 3, 4},
	)
}

func TestSelect3VL(t *testing.T) {
	// R.A > 1 keeps 5 and 10; rejects 1 (false) and NULL (unknown).
	got, err := Select(relR(), expr.Compare(expr.Gt, expr.Col("R.A"), expr.Val(1)))
	if err != nil {
		t.Fatal(err)
	}
	want := relation.MustFromRows("R", []string{"R.A", "R.B", "R.D"},
		[]any{5, 6, 2}, []any{10, 2, 3})
	mustEq(t, got, want, "select")
}

func TestSelectError(t *testing.T) {
	if _, err := Select(relR(), expr.Col("nope")); err == nil {
		t.Fatal("unknown column must error")
	}
	if _, err := Select(relR(), expr.Compare(expr.Eq, expr.Col("R.A"), expr.Val("x"))); err == nil {
		t.Fatal("type mismatch must error")
	}
}

func TestDistinct(t *testing.T) {
	r := relation.MustFromRows("R", []string{"x"}, []any{1}, []any{1}, []any{nil}, []any{nil}, []any{2})
	d := Distinct(r)
	if d.Len() != 3 {
		t.Fatalf("distinct len = %d, want 3 (NULLs collapse)", d.Len())
	}
}

func TestProjectAndDropSub(t *testing.T) {
	p, err := Project(relR(), "R.B", "R.D")
	if err != nil {
		t.Fatal(err)
	}
	want := relation.MustFromRows("R", []string{"R.B", "R.D"},
		[]any{2, 1}, []any{6, 2}, []any{2, 3}, []any{nil, 4})
	mustEq(t, p, want, "project")

	if _, err := Project(relR(), "R.Z"); err == nil {
		t.Fatal("unknown column must error")
	}

	n, err := Nest(relS(), []string{"S.G"}, []string{"S.E", "S.I"}, "g")
	if err != nil {
		t.Fatal(err)
	}
	d, err := DropSub(n, "g")
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Schema.Subs) != 0 || d.Len() != n.Len() {
		t.Fatal("DropSub should remove the group, keep rows")
	}
	if _, err := DropSub(n, "nope"); err == nil {
		t.Fatal("unknown sub must error")
	}
}

func TestHashJoinBasics(t *testing.T) {
	on := expr.Compare(expr.Eq, expr.Col("R.D"), expr.Col("S.G"))
	j, err := Join(relR(), relS(), on)
	if err != nil {
		t.Fatal(err)
	}
	// D=1 matches two S rows; D=2 one; D=3 one; D=4 none.
	if j.Len() != 4 {
		t.Fatalf("join len = %d, want 4\n%s", j.Len(), j)
	}
	// Swapped orientation must produce the same result.
	j2, err := Join(relR(), relS(), expr.Compare(expr.Eq, expr.Col("S.G"), expr.Col("R.D")))
	if err != nil {
		t.Fatal(err)
	}
	mustEq(t, j, j2, "swapped equi-join")
}

func TestJoinNullKeysNeverMatch(t *testing.T) {
	l := relation.MustFromRows("L", []string{"L.k"}, []any{nil}, []any{1})
	r := relation.MustFromRows("Rr", []string{"Rr.k"}, []any{nil}, []any{1})
	j, err := Join(l, r, expr.Compare(expr.Eq, expr.Col("L.k"), expr.Col("Rr.k")))
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 1 {
		t.Fatalf("NULL=NULL must not join: len=%d", j.Len())
	}
}

func TestJoinResidualPredicate(t *testing.T) {
	on := expr.And(
		expr.Compare(expr.Eq, expr.Col("R.D"), expr.Col("S.G")),
		expr.Compare(expr.Gt, expr.Col("S.E"), expr.Col("R.B")),
	)
	j, err := Join(relR(), relS(), on)
	if err != nil {
		t.Fatal(err)
	}
	// (D=1,B=2): S.E=4 passes, S.E=2 fails. (D=2,B=6): S.E=6 fails.
	// (D=3,B=2): S.E=null → unknown, fails.
	if j.Len() != 1 {
		t.Fatalf("residual join len = %d, want 1\n%s", j.Len(), j)
	}
}

func TestNonEquiJoinFallsBackToNestedLoop(t *testing.T) {
	on := expr.Compare(expr.Lt, expr.Col("R.D"), expr.Col("S.G"))
	j, err := Join(relR(), relS(), on)
	if err != nil {
		t.Fatal(err)
	}
	// Pairs with R.D < S.G: D=1 with G∈{2,3} = 2 rows; D=2 with G=3 = 1 row.
	if j.Len() != 3 {
		t.Fatalf("theta join len = %d, want 3", j.Len())
	}
}

func TestProductIsCross(t *testing.T) {
	p, err := Product(relR(), relS())
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != relR().Len()*relS().Len() {
		t.Fatalf("product len = %d", p.Len())
	}
}

func TestJoinDuplicateColumnError(t *testing.T) {
	if _, err := Join(relR(), relR(), nil); err == nil {
		t.Fatal("self-product without rename must error on duplicate names")
	}
}

func TestLeftOuterJoinPadsPK(t *testing.T) {
	on := expr.Compare(expr.Eq, expr.Col("R.D"), expr.Col("S.G"))
	j, err := LeftOuterJoin(relR(), relS(), on)
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 5 { // 4 matches + 1 padded row for D=4
		t.Fatalf("outer join len = %d, want 5\n%s", j.Len(), j)
	}
	padded := 0
	si := j.Schema.MustColIndex("S.I")
	for _, tp := range j.Tuples {
		if tp.Atoms[si].IsNull() {
			padded++
		}
	}
	if padded != 1 {
		t.Fatalf("padded rows = %d, want 1", padded)
	}
}

func TestSemiAntiJoin(t *testing.T) {
	on := expr.Compare(expr.Eq, expr.Col("R.D"), expr.Col("S.G"))
	semi, err := SemiJoin(relR(), relS(), on)
	if err != nil {
		t.Fatal(err)
	}
	if semi.Len() != 3 {
		t.Fatalf("semijoin len = %d, want 3", semi.Len())
	}
	anti, err := AntiJoin(relR(), relS(), on)
	if err != nil {
		t.Fatal(err)
	}
	if anti.Len() != 1 || !anti.Tuples[0].Atoms[0].IsNull() {
		t.Fatalf("antijoin should keep only the D=4 row:\n%s", anti)
	}
}

// TestAntiJoinIsNotNotIn demonstrates the §2 counterexample: with R.A = 5
// and S.B = {2,3,4,null}, "R.A > ALL (select S.B)" is UNKNOWN (so the row
// is rejected), but the antijoin of R and S on R.A <= S.B keeps the row —
// the two are NOT equivalent when NULLs are present.
func TestAntiJoinIsNotNotIn(t *testing.T) {
	r := relation.MustFromRows("R", []string{"R.A"}, []any{5})
	s := relation.MustFromRows("S", []string{"S.B"}, []any{2}, []any{3}, []any{4}, []any{nil})

	anti, err := AntiJoin(r, s, expr.Compare(expr.Le, expr.Col("R.A"), expr.Col("S.B")))
	if err != nil {
		t.Fatal(err)
	}
	if anti.Len() != 1 {
		t.Fatalf("antijoin keeps the tuple (no S.B >= 5 is TRUE): len=%d", anti.Len())
	}

	// The linking predicate, evaluated correctly, is Unknown → rejected.
	g := AddGroup(r, "g", s)
	sel, err := LinkSelect(g, AllPred("R.A", expr.Gt, "g", "S.B", ""))
	if err != nil {
		t.Fatal(err)
	}
	if sel.Len() != 0 {
		t.Fatalf(">ALL over a NULL-containing set must be Unknown, got %d rows", sel.Len())
	}
}

func TestSetOps(t *testing.T) {
	a := relation.MustFromRows("A", []string{"x"}, []any{1}, []any{2}, []any{nil})
	b := relation.MustFromRows("B", []string{"x"}, []any{2}, []any{3}, []any{nil})
	u, err := Union(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() != 4 { // 1,2,3,null
		t.Fatalf("union len = %d", u.Len())
	}
	i, err := Intersect(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if i.Len() != 2 { // 2 and null (set semantics treat NULL as identical)
		t.Fatalf("intersect len = %d", i.Len())
	}
	d, err := Difference(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 1 {
		t.Fatalf("difference len = %d", d.Len())
	}
	bad := relation.MustFromRows("C", []string{"x", "y"}, []any{1, 2})
	if _, err := Union(a, bad); err == nil {
		t.Fatal("incompatible union must error")
	}
}

func TestNestBasics(t *testing.T) {
	n, err := Nest(relS(), []string{"S.G"}, []string{"S.E", "S.I"}, "g")
	if err != nil {
		t.Fatal(err)
	}
	if n.Len() != 3 {
		t.Fatalf("nest groups = %d, want 3\n%s", n.Len(), n)
	}
	gi := n.Schema.SubIndex("g")
	for _, tp := range n.Tuples {
		if tp.Atoms[0].IsNull() {
			t.Fatal("unexpected null key")
		}
		if tp.Atoms[0].Int64() == 1 && tp.Groups[gi].Len() != 2 {
			t.Fatalf("G=1 group should have 2 members:\n%s", n)
		}
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if n.Schema.Depth() != 1 {
		t.Fatal("nest result should be depth 1")
	}
}

func TestNestNullKeysGroupTogether(t *testing.T) {
	r := relation.MustFromRows("R", []string{"k", "v"},
		[]any{nil, 1}, []any{nil, 2}, []any{1, 3})
	n, err := Nest(r, []string{"k"}, []string{"v"}, "g")
	if err != nil {
		t.Fatal(err)
	}
	if n.Len() != 2 {
		t.Fatalf("NULL keys must form one group: %d groups", n.Len())
	}
}

func TestNestSortMatchesHashNest(t *testing.T) {
	a, err := Nest(relS(), []string{"S.G"}, []string{"S.E", "S.I"}, "g")
	if err != nil {
		t.Fatal(err)
	}
	b, err := NestSort(relS(), []string{"S.G"}, []string{"S.E", "S.I"}, "g")
	if err != nil {
		t.Fatal(err)
	}
	mustEq(t, a, b, "sort-based nest vs hash-based nest")
}

func TestNestErrors(t *testing.T) {
	if _, err := Nest(relS(), []string{"nope"}, []string{"S.E"}, "g"); err == nil {
		t.Fatal("unknown nesting attr")
	}
	if _, err := Nest(relS(), []string{"S.G"}, []string{"nope"}, "g"); err == nil {
		t.Fatal("unknown nested attr")
	}
	if _, err := Nest(relS(), []string{"S.G"}, []string{"S.G"}, "g"); err == nil {
		t.Fatal("attr in both N1 and N2")
	}
	if _, err := Nest(relS(), []string{"S.G", "S.G"}, []string{"S.E"}, "g"); err == nil {
		t.Fatal("repeated nesting attr")
	}
}

func TestUnnestInverseOfNest(t *testing.T) {
	n, err := Nest(relS(), []string{"S.G"}, []string{"S.E", "S.I"}, "g")
	if err != nil {
		t.Fatal(err)
	}
	u, err := Unnest(n, "g")
	if err != nil {
		t.Fatal(err)
	}
	// unnest(nest(r)) = π_{N1∪N2}(r) when every group is non-empty.
	want, err := Project(relS(), "S.G", "S.E", "S.I")
	if err != nil {
		t.Fatal(err)
	}
	mustEq(t, u, want, "unnest∘nest")
}

func TestUnnestDropsEmptyGroups(t *testing.T) {
	inner := relation.NewSchema("g", relation.Column{Name: "x", Type: relation.TInt})
	s := &relation.Schema{Name: "N",
		Cols: []relation.Column{{Name: "k", Type: relation.TInt}},
		Subs: []relation.Sub{{Name: "g", Schema: inner}}}
	r := relation.New(s)
	r.Append(relation.Tuple{Atoms: []value.Value{value.Int(1)}, Groups: []*relation.Relation{nil}})
	full := relation.New(inner)
	full.Append(relation.NewTuple(value.Int(9)))
	r.Append(relation.Tuple{Atoms: []value.Value{value.Int(2)}, Groups: []*relation.Relation{full}})
	u, err := Unnest(r, "g")
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() != 1 || u.Tuples[0].Atoms[0].Int64() != 2 {
		t.Fatalf("unnest should drop the empty-group tuple:\n%s", u)
	}
}

func TestTwoLevelNest(t *testing.T) {
	// Nest twice: first by (G,E), then by (G): the second nest carries the
	// first group along, giving the depth-2 relation of §4.2.1.
	n1, err := Nest(relS(), []string{"S.G", "S.E"}, []string{"S.I"}, "g1")
	if err != nil {
		t.Fatal(err)
	}
	n2, err := Nest(n1, []string{"S.G"}, []string{"S.E"}, "g2")
	if err != nil {
		t.Fatal(err)
	}
	if n2.Schema.Depth() != 2 {
		t.Fatalf("depth = %d, want 2\n%s", n2.Schema.Depth(), n2)
	}
	if err := n2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLinkPredSomeAll(t *testing.T) {
	set := relation.MustFromRows("g", []string{"S.B", "S.I"},
		[]any{2, 1}, []any{3, 2}, []any{4, 3}, []any{nil, 4})
	r := relation.MustFromRows("R", []string{"R.A"}, []any{5})
	g := AddGroup(r, "g", set)

	cases := []struct {
		p    LinkPred
		want value.Tri
	}{
		{AllPred("R.A", expr.Gt, "g", "S.B", "S.I"), value.Unknown}, // 5 >ALL {2,3,4,null}
		{SomePred("R.A", expr.Gt, "g", "S.B", "S.I"), value.True},
		{AllPred("R.A", expr.Lt, "g", "S.B", "S.I"), value.False},
		{SomePred("R.A", expr.Lt, "g", "S.B", "S.I"), value.Unknown},
		{SomePred("R.A", expr.Eq, "g", "S.B", "S.I"), value.Unknown}, // IN over nulls
		{AllPred("R.A", expr.Ne, "g", "S.B", "S.I"), value.Unknown},  // NOT IN over nulls
		{ExistsPred("g", "S.I"), value.True},
		{NotExistsPred("g", "S.I"), value.False},
	}
	for i, tc := range cases {
		b, err := tc.p.Bind(g.Schema)
		if err != nil {
			t.Fatal(err)
		}
		got, err := b.Eval(g.Tuples[0])
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("case %d (%s): got %v, want %v", i, tc.p, got, tc.want)
		}
	}
}

func TestLinkPredEmptyAndPaddedSets(t *testing.T) {
	// A group whose only member is padding (presence NULL) is the empty set.
	set := relation.MustFromRows("g", []string{"S.B", "S.I"}, []any{nil, nil})
	r := relation.MustFromRows("R", []string{"R.A"}, []any{5})
	g := AddGroup(r, "g", set)
	cases := []struct {
		p    LinkPred
		want value.Tri
	}{
		{AllPred("R.A", expr.Gt, "g", "S.B", "S.I"), value.True},   // ALL over ∅
		{SomePred("R.A", expr.Gt, "g", "S.B", "S.I"), value.False}, // SOME over ∅
		{ExistsPred("g", "S.I"), value.False},
		{NotExistsPred("g", "S.I"), value.True},
	}
	for i, tc := range cases {
		b, err := tc.p.Bind(g.Schema)
		if err != nil {
			t.Fatal(err)
		}
		got, err := b.Eval(g.Tuples[0])
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("case %d (%s): got %v, want %v", i, tc.p, got, tc.want)
		}
	}
}

func TestLinkPredBindErrors(t *testing.T) {
	set := relation.MustFromRows("g", []string{"S.B", "S.I"}, []any{1, 1})
	g := AddGroup(relation.MustFromRows("R", []string{"R.A"}, []any{5}), "g", set)
	bad := []LinkPred{
		AllPred("R.A", expr.Gt, "nosub", "S.B", "S.I"),
		AllPred("R.Z", expr.Gt, "g", "S.B", "S.I"),
		AllPred("R.A", expr.Gt, "g", "S.Z", "S.I"),
		AllPred("R.A", expr.Gt, "g", "S.B", "S.Z"),
	}
	for i, p := range bad {
		if _, err := p.Bind(g.Schema); err == nil {
			t.Errorf("case %d: expected bind error", i)
		}
	}
}

func TestLinkSelectStrictVsPad(t *testing.T) {
	// Two outer tuples: A=5 (fails >ALL{7}) and A=9 (passes).
	set := relation.MustFromRows("g", []string{"S.B", "S.I"}, []any{7, 1})
	r := relation.MustFromRows("R", []string{"R.A", "R.K"}, []any{5, 1}, []any{9, 2})
	g := AddGroup(r, "g", set)
	p := AllPred("R.A", expr.Gt, "g", "S.B", "S.I")

	strict, err := LinkSelect(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if strict.Len() != 1 || strict.Tuples[0].Atoms[0].Int64() != 9 {
		t.Fatalf("strict selection wrong:\n%s", strict)
	}

	padded, err := LinkSelectPad(g, p, []string{"R.A", "R.K"})
	if err != nil {
		t.Fatal(err)
	}
	if padded.Len() != 2 {
		t.Fatalf("pseudo-selection must keep both tuples: %d", padded.Len())
	}
	var sawPadded bool
	for _, tp := range padded.Tuples {
		if tp.Atoms[0].IsNull() && tp.Atoms[1].IsNull() {
			sawPadded = true
		}
	}
	if !sawPadded {
		t.Fatalf("failing tuple must be NULL-padded:\n%s", padded)
	}
	if _, err := LinkSelectPad(g, p, []string{"R.Z"}); err == nil {
		t.Fatal("unknown pad column must error")
	}
}

func TestAddGroupShares(t *testing.T) {
	set := relation.MustFromRows("g", []string{"x"}, []any{1})
	r := relation.MustFromRows("R", []string{"a"}, []any{1}, []any{2})
	g := AddGroup(r, "g", set)
	if g.Tuples[0].Groups[0] != g.Tuples[1].Groups[0] {
		t.Fatal("AddGroup must share the group relation")
	}
	if g.Schema.SubIndex("g") < 0 {
		t.Fatal("sub missing")
	}
}

func TestWithin(t *testing.T) {
	n, err := Nest(relS(), []string{"S.G"}, []string{"S.E", "S.I"}, "g")
	if err != nil {
		t.Fatal(err)
	}
	out, err := Within(n, "g", func(g *relation.Relation) (*relation.Relation, error) {
		return Select(g, expr.Compare(expr.Gt, expr.Col("S.E"), expr.Val(3)))
	})
	if err != nil {
		t.Fatal(err)
	}
	gi := out.Schema.SubIndex("g")
	total := 0
	for _, tp := range out.Tuples {
		total += tp.Groups[gi].Len()
	}
	if total != 2 { // S.E ∈ {4,6} pass; 2 fails; null fails
		t.Fatalf("within-filtered members = %d, want 2", total)
	}
	if _, err := Within(n, "nope", nil); err == nil {
		t.Fatal("unknown sub must error")
	}
}
