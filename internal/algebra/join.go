package algebra

import (
	"fmt"

	"nra/internal/expr"
	"nra/internal/relation"
	"nra/internal/value"
)

// joinSchema concatenates two schemas; duplicate column or subschema names
// are an error (the front end always produces fully qualified names).
func joinSchema(name string, l, r *relation.Schema) (*relation.Schema, error) {
	out := &relation.Schema{Name: name}
	out.Cols = append(append([]relation.Column{}, l.Cols...), r.Cols...)
	out.Subs = append(append([]relation.Sub{}, l.Subs...), r.Subs...)
	seen := make(map[string]bool, len(out.Cols))
	for _, c := range out.Cols {
		if seen[c.Name] {
			return nil, fmt.Errorf("join: duplicate column %q", c.Name)
		}
		seen[c.Name] = true
	}
	return out, nil
}

func concatTuple(l, r relation.Tuple) relation.Tuple {
	t := relation.Tuple{
		Atoms: make([]value.Value, 0, len(l.Atoms)+len(r.Atoms)),
	}
	t.Atoms = append(append(t.Atoms, l.Atoms...), r.Atoms...)
	if len(l.Groups)+len(r.Groups) > 0 {
		t.Groups = make([]*relation.Relation, 0, len(l.Groups)+len(r.Groups))
		t.Groups = append(append(t.Groups, l.Groups...), r.Groups...)
	}
	return t
}

// nullTuple returns the all-NULL (empty-group) padding tuple for a schema.
func nullTuple(s *relation.Schema) relation.Tuple {
	t := relation.Tuple{Atoms: make([]value.Value, len(s.Cols))}
	if len(s.Subs) > 0 {
		t.Groups = make([]*relation.Relation, len(s.Subs))
	}
	return t
}

// equiKeys walks an AND-tree of predicates and splits out equality
// conjuncts of the form lcol = rcol with one column from each side. The
// remaining conjuncts are returned as the residual predicate (nil if none).
func equiKeys(on expr.Expr, ls, rs *relation.Schema) (lk, rk []int, residual expr.Expr) {
	var walk func(e expr.Expr)
	var rest []expr.Expr
	walk = func(e expr.Expr) {
		if l, ok := e.(expr.Logic); ok && l.Op == expr.OpAnd {
			walk(l.L)
			walk(l.R)
			return
		}
		if c, ok := e.(expr.Cmp); ok && c.Op == expr.Eq {
			lc, lok := c.L.(expr.Column)
			rc, rok := c.R.(expr.Column)
			if lok && rok {
				li, ri := ls.ColIndex(lc.Name), rs.ColIndex(rc.Name)
				if li >= 0 && ri >= 0 && rs.ColIndex(lc.Name) < 0 && ls.ColIndex(rc.Name) < 0 {
					lk, rk = append(lk, li), append(rk, ri)
					return
				}
				// Swapped orientation: rcol = lcol.
				li, ri = ls.ColIndex(rc.Name), rs.ColIndex(lc.Name)
				if li >= 0 && ri >= 0 && rs.ColIndex(rc.Name) < 0 && ls.ColIndex(lc.Name) < 0 {
					lk, rk = append(lk, li), append(rk, ri)
					return
				}
			}
		}
		rest = append(rest, e)
	}
	if on != nil {
		walk(on)
	}
	return lk, rk, expr.And(rest...)
}

// hashTable buckets right-side tuples by their equi-key. NULL key
// components never match anything under SQL equality, so tuples containing
// a NULL key are left out of the table.
func buildHash(r *relation.Relation, keys []int) map[string][]int {
	h := make(map[string][]int, len(r.Tuples))
outer:
	for i, t := range r.Tuples {
		for _, k := range keys {
			if t.Atoms[k].IsNull() {
				continue outer
			}
		}
		k := t.KeyOn(keys)
		h[k] = append(h[k], i)
	}
	return h
}

// Product returns the Cartesian product l × r.
func Product(l, r *relation.Relation) (*relation.Relation, error) {
	return Join(l, r, nil)
}

// Join returns the θ-join l ⋈_on r. Equality conjuncts between the two
// sides are executed as a hash join — the only join algorithm the nested
// relational approach requires (§1: "only hash joins are necessary") —
// with any residual predicate applied to matching pairs. A condition with
// no equality conjunct falls back to a nested-loop join. A nil condition
// is the Cartesian product.
func Join(l, r *relation.Relation, on expr.Expr) (*relation.Relation, error) {
	return join(l, r, on, false)
}

// LeftOuterJoin returns l ⟕_on r: like Join, but left tuples with no
// match survive padded with NULLs on the right side — including the right
// side's primary key, which is how the nested approach encodes "this outer
// tuple's subquery set is empty".
func LeftOuterJoin(l, r *relation.Relation, on expr.Expr) (*relation.Relation, error) {
	return join(l, r, on, true)
}

func join(l, r *relation.Relation, on expr.Expr, outer bool) (*relation.Relation, error) {
	schema, err := joinSchema(l.Schema.Name, l.Schema, r.Schema)
	if err != nil {
		return nil, err
	}
	lk, rk, residual := equiKeys(on, l.Schema, r.Schema)
	var check *expr.Compiled
	if residual != nil {
		check, err = expr.Compile(residual, schema)
		if err != nil {
			return nil, fmt.Errorf("join: %w", err)
		}
	}
	out := relation.New(schema)
	pad := nullTuple(r.Schema)

	emit := func(lt, rt relation.Tuple) (bool, error) {
		joined := concatTuple(lt, rt)
		if check != nil {
			tri, err := check.Truth(joined)
			if err != nil {
				return false, err
			}
			if !tri.IsTrue() {
				return false, nil
			}
		}
		out.Append(joined)
		return true, nil
	}

	if len(lk) > 0 {
		h := buildHash(r, rk)
		for _, lt := range l.Tuples {
			matched := false
			if key, ok := probeKey(lt, lk); ok {
				for _, ri := range h[key] {
					ok, err := emit(lt, r.Tuples[ri])
					if err != nil {
						return nil, err
					}
					matched = matched || ok
				}
			}
			if outer && !matched {
				out.Append(concatTuple(lt, pad))
			}
		}
		return out, nil
	}

	// Nested-loop fallback (non-equi or cross join).
	for _, lt := range l.Tuples {
		matched := false
		for _, rt := range r.Tuples {
			ok, err := emit(lt, rt)
			if err != nil {
				return nil, err
			}
			matched = matched || ok
		}
		if outer && !matched {
			out.Append(concatTuple(lt, pad))
		}
	}
	return out, nil
}

func probeKey(t relation.Tuple, keys []int) (string, bool) {
	for _, k := range keys {
		if t.Atoms[k].IsNull() {
			return "", false
		}
	}
	return t.KeyOn(keys), true
}

// SemiJoin returns l ⋉_on r: the left tuples for which at least one right
// tuple satisfies the condition (the classical implementation of
// EXISTS/IN/positive-SOME linking predicates).
func SemiJoin(l, r *relation.Relation, on expr.Expr) (*relation.Relation, error) {
	return semi(l, r, on, true)
}

// AntiJoin returns l ▷_on r: the left tuples for which *no* right tuple
// satisfies the condition. Note that this is the classical 2-valued
// antijoin: as §2 of the paper stresses, it is NOT equivalent to NOT
// IN/θ ALL when NULLs are present — a fact the test suite demonstrates.
func AntiJoin(l, r *relation.Relation, on expr.Expr) (*relation.Relation, error) {
	return semi(l, r, on, false)
}

func semi(l, r *relation.Relation, on expr.Expr, want bool) (*relation.Relation, error) {
	probe, err := joinSchema("", l.Schema, r.Schema)
	if err != nil {
		return nil, err
	}
	lk, rk, residual := equiKeys(on, l.Schema, r.Schema)
	var check *expr.Compiled
	if residual != nil {
		check, err = expr.Compile(residual, probe)
		if err != nil {
			return nil, fmt.Errorf("semijoin: %w", err)
		}
	}
	out := relation.New(l.Schema)

	matches := func(lt relation.Tuple, candidates []int) (bool, error) {
		for _, ri := range candidates {
			if check == nil {
				return true, nil
			}
			tri, err := check.Truth(concatTuple(lt, r.Tuples[ri]))
			if err != nil {
				return false, err
			}
			if tri.IsTrue() {
				return true, nil
			}
		}
		return false, nil
	}

	var h map[string][]int
	all := make([]int, len(r.Tuples))
	for i := range all {
		all[i] = i
	}
	if len(lk) > 0 {
		h = buildHash(r, rk)
	}
	for _, lt := range l.Tuples {
		var cand []int
		if h != nil {
			if key, ok := probeKey(lt, lk); ok {
				cand = h[key]
			}
		} else {
			cand = all
		}
		m, err := matches(lt, cand)
		if err != nil {
			return nil, err
		}
		if m == want {
			out.Append(lt)
		}
	}
	return out, nil
}
