package algebra

// This file replays the paper's worked example (§3 Example 1 and §4
// Example 2) operator by operator: Temp1 = π(R ⟕ S ⟕ T),
// Temp2 = υ(Temp1), Temp3 = σ̄(Temp2), Temp4 = σ(Temp2), and the full
// Query Q pipeline ending in π(σ̄ → υ → σ). The base-relation values are
// reconstructed (the published scan is partly illegible) but every
// structural property the figures demonstrate is asserted:
//
//   - outer-joined tuples with no match carry NULL primary keys (Fig. 1d);
//   - nesting by the outer attributes yields one group per (R,S) combo,
//     with the padded tuples representing the empty set (Fig. 2a);
//   - the pseudo-selection keeps failing tuples NULL-padded (Fig. 2b)
//     while the strict selection drops them (Fig. 2c);
//   - a tuple whose linking attribute is NULL still passes when its set
//     is empty (the paper's "fourth and fifth tuples" remark).

import (
	"strings"
	"testing"

	"nra/internal/expr"
	"nra/internal/relation"
	"nra/internal/value"
)

func figureRelations() (r, s, tt *relation.Relation) {
	r = relation.MustFromRows("R", []string{"R.A", "R.B", "R.C", "R.D"},
		[]any{1, 2, 3, 1},
		[]any{5, 6, 7, 2},
		[]any{10, 2, 3, 3},
		[]any{nil, nil, 5, 4},
	)
	s = relation.MustFromRows("S", []string{"S.E", "S.F", "S.G", "S.H", "S.I"},
		[]any{2, 5, 1, 8, 1},
		[]any{4, 5, 1, 2, 2},
		[]any{6, 5, 2, nil, 3},
		[]any{9, 7, 3, 5, 4},
	)
	tt = relation.MustFromRows("T", []string{"T.J", "T.K", "T.L"},
		[]any{7, 3, 1},
		[]any{9, 3, 2},
		[]any{nil, 5, 3},
		[]any{1, 7, 4},
	)
	return
}

// buildTemp1 computes Temp1 = π(R ⟕_{R.D=S.G} S ⟕_{T.K=R.C ∧ T.L<>S.I} T).
func buildTemp1(t *testing.T) *relation.Relation {
	t.Helper()
	r, s, tt := figureRelations()
	rs, err := LeftOuterJoin(r, s, expr.Compare(expr.Eq, expr.Col("R.D"), expr.Col("S.G")))
	if err != nil {
		t.Fatal(err)
	}
	rst, err := LeftOuterJoin(rs, tt, expr.And(
		expr.Compare(expr.Eq, expr.Col("T.K"), expr.Col("R.C")),
		expr.Compare(expr.Ne, expr.Col("T.L"), expr.Col("S.I"))))
	if err != nil {
		t.Fatal(err)
	}
	temp1, err := Project(rst, "R.B", "R.C", "R.D", "S.E", "S.H", "S.I", "T.J", "T.L")
	if err != nil {
		t.Fatal(err)
	}
	return temp1
}

func TestFigure1Temp1PadsPrimaryKeys(t *testing.T) {
	temp1 := buildTemp1(t)
	si := temp1.Schema.MustColIndex("S.I")
	tl := temp1.Schema.MustColIndex("T.L")
	rd := temp1.Schema.MustColIndex("R.D")
	var sawSPad, sawTPad bool
	for _, tup := range temp1.Tuples {
		if tup.Atoms[si].IsNull() {
			sawSPad = true
			// The R row with D=4 has no S match.
			if tup.Atoms[rd].Int64() != 4 {
				t.Fatalf("unexpected S padding for R.D=%s", tup.Atoms[rd])
			}
		}
		if tup.Atoms[tl].IsNull() {
			sawTPad = true
		}
	}
	if !sawSPad || !sawTPad {
		t.Fatalf("outer-join padding missing: S=%v T=%v\n%s", sawSPad, sawTPad, temp1)
	}
}

func TestFigure2Temp2Nesting(t *testing.T) {
	temp1 := buildTemp1(t)
	temp2, err := Nest(temp1,
		[]string{"R.B", "R.C", "R.D", "S.E", "S.H", "S.I"},
		[]string{"T.J", "T.L"}, "g")
	if err != nil {
		t.Fatal(err)
	}
	// One nested tuple per distinct (R,S) combination of Temp1.
	distinct := map[string]bool{}
	byIdx := make([]int, 6)
	for i, c := range []string{"R.B", "R.C", "R.D", "S.E", "S.H", "S.I"} {
		byIdx[i] = temp1.Schema.MustColIndex(c)
	}
	for _, tup := range temp1.Tuples {
		distinct[tup.KeyOn(byIdx)] = true
	}
	if temp2.Len() != len(distinct) {
		t.Fatalf("Temp2 groups = %d, want %d", temp2.Len(), len(distinct))
	}
	if temp2.Schema.Depth() != 1 {
		t.Fatal("Temp2 must be a one-level nested relation")
	}
}

func TestFigure2LinkingSelections(t *testing.T) {
	temp1 := buildTemp1(t)
	temp2, err := Nest(temp1,
		[]string{"R.B", "R.C", "R.D", "S.E", "S.H", "S.I"},
		[]string{"T.J", "T.L"}, "g")
	if err != nil {
		t.Fatal(err)
	}
	link := AllPred("S.H", expr.Gt, "g", "T.J", "T.L")

	// Temp3 = σ̄: every group survives; failing ones are NULL-padded on
	// the S attributes.
	temp3, err := LinkSelectPad(temp2, link, []string{"S.E", "S.H", "S.I"})
	if err != nil {
		t.Fatal(err)
	}
	if temp3.Len() != temp2.Len() {
		t.Fatalf("pseudo-selection must keep all %d tuples, got %d", temp2.Len(), temp3.Len())
	}

	// Temp4 = σ: only passing groups survive.
	temp4, err := LinkSelect(temp2, link)
	if err != nil {
		t.Fatal(err)
	}
	if temp4.Len() >= temp3.Len() {
		t.Fatalf("strict selection should drop failing tuples: %d vs %d", temp4.Len(), temp3.Len())
	}

	// "For the fourth and fifth tuples ... although S.H is null, the
	// linking selection returns true because the set is empty": a tuple
	// with NULL S.H whose T-group is all padding must survive σ.
	sh := temp4.Schema.MustColIndex("S.H")
	foundNullH := false
	for _, tup := range temp4.Tuples {
		if tup.Atoms[sh].IsNull() {
			foundNullH = true
		}
	}
	if !foundNullH {
		t.Fatalf("NULL-S.H tuple with empty set should pass σ:\n%s", temp4)
	}

	// The padded tuples of Temp3 must have NULL S.I (the presence mark),
	// so one level up they stop being set members.
	padded := 0
	siIdx := temp3.Schema.MustColIndex("S.I")
	for _, tup := range temp3.Tuples {
		if tup.Atoms[siIdx].IsNull() && tup.Atoms[temp3.Schema.MustColIndex("R.D")].Int64() != 4 {
			padded++
		}
	}
	if padded == 0 {
		t.Fatalf("σ̄ should have padded at least one failing tuple:\n%s", temp3)
	}
}

func TestFigureRenderingMatchesPaperStyle(t *testing.T) {
	temp1 := buildTemp1(t)
	temp2, err := Nest(temp1,
		[]string{"R.B", "R.C", "R.D", "S.E", "S.H", "S.I"},
		[]string{"T.J", "T.L"}, "g")
	if err != nil {
		t.Fatal(err)
	}
	out := temp2.String()
	// The paper prints nested groups in braces and NULLs as "null".
	if !strings.Contains(out, "{") || !strings.Contains(out, "null") {
		t.Fatalf("nested rendering should use braces and 'null':\n%s", out)
	}
}

func TestQueryQPipelineByHand(t *testing.T) {
	// The full §4 Example 2 pipeline, written out operator by operator.
	r, _, _ := figureRelations()
	_ = r
	temp1 := buildTemp1(t)
	temp2, err := Nest(temp1,
		[]string{"R.B", "R.C", "R.D", "S.E", "S.H", "S.I"},
		[]string{"T.J", "T.L"}, "g")
	if err != nil {
		t.Fatal(err)
	}
	temp3, err := LinkSelectPad(temp2, AllPred("S.H", expr.Gt, "g", "T.J", "T.L"),
		[]string{"S.E", "S.H", "S.I"})
	if err != nil {
		t.Fatal(err)
	}
	flat, err := DropSub(temp3, "g")
	if err != nil {
		t.Fatal(err)
	}
	nested2, err := Nest(flat, []string{"R.B", "R.C", "R.D"}, []string{"S.E", "S.I"}, "g")
	if err != nil {
		t.Fatal(err)
	}
	// L1: R.B NOT IN {S.E} ≡ R.B <> ALL {S.E}; strict σ at the root.
	final, err := LinkSelect(nested2, AllPred("R.B", expr.Ne, "g", "S.E", "S.I"))
	if err != nil {
		t.Fatal(err)
	}
	result, err := DropSub(final, "g")
	if err != nil {
		t.Fatal(err)
	}

	// Note: this hand pipeline intentionally omits the local selections
	// R.A > 1 and S.F = 5 to stay close to Figure 2; apply R.A > 1 last
	// to obtain Query Q's answer over these relations.
	// Verify against direct per-tuple evaluation of the NOT IN predicate.
	want := map[string]bool{}
	rRel, sRel, tRel := figureRelations()
	for _, rt := range rRel.Tuples {
		rb, rc, rd := rt.Atoms[1], rt.Atoms[2], rt.Atoms[3]
		notIn := value.True
		for _, st := range sRel.Tuples {
			cmp, known, _ := value.Compare(rd, st.Atoms[2]) // R.D = S.G
			if !known || cmp != 0 {
				continue
			}
			// Inner ALL: S.H > ALL {T.J | T.K=R.C ∧ T.L<>S.I}
			inner := value.True
			for _, ttp := range tRel.Tuples {
				c1, k1, _ := value.Compare(ttp.Atoms[1], rc) // T.K = R.C
				c2, k2, _ := value.Compare(ttp.Atoms[2], st.Atoms[4])
				if !k1 || c1 != 0 || (k2 && c2 == 0) {
					continue
				}
				tri, _ := expr.Gt.Apply(st.Atoms[3], ttp.Atoms[0])
				inner = inner.And(tri)
			}
			if inner != value.True {
				continue // S tuple does not qualify
			}
			tri, _ := expr.Ne.Apply(rb, st.Atoms[0])
			notIn = notIn.And(tri)
		}
		if notIn == value.True {
			want[relation.NewTuple(rb, rc, rd).Key()] = true
		}
	}
	if result.Len() != len(want) {
		t.Fatalf("pipeline result %d rows, direct evaluation %d:\n%s", result.Len(), len(want), result)
	}
	for _, tup := range result.Tuples {
		if !want[tup.Key()] {
			t.Fatalf("unexpected tuple %v", tup.Atoms)
		}
	}
}

// TestReduceNestingViaTwoLevelNest replays §4.2.1's observation: the two
// linking selections of Query Q can run over ONE two-level nested
// relation — the inner predicate via Within on the depth-2 groups, the
// outer one directly — and produce the same answer as the interleaved
// nest/select/drop pipeline.
func TestReduceNestingViaTwoLevelNest(t *testing.T) {
	temp1 := buildTemp1(t)

	// Interleaved (original §4.1) pipeline.
	n1, err := Nest(temp1,
		[]string{"R.B", "R.C", "R.D", "S.E", "S.H", "S.I"},
		[]string{"T.J", "T.L"}, "gT")
	if err != nil {
		t.Fatal(err)
	}
	sel1, err := LinkSelectPad(n1, AllPred("S.H", expr.Gt, "gT", "T.J", "T.L"),
		[]string{"S.E", "S.H", "S.I"})
	if err != nil {
		t.Fatal(err)
	}
	flat, err := DropSub(sel1, "gT")
	if err != nil {
		t.Fatal(err)
	}
	n2, err := Nest(flat, []string{"R.B", "R.C", "R.D"}, []string{"S.E", "S.I"}, "gS")
	if err != nil {
		t.Fatal(err)
	}
	sel2, err := LinkSelect(n2, AllPred("R.B", expr.Ne, "gS", "S.E", "S.I"))
	if err != nil {
		t.Fatal(err)
	}
	want, err := DropSub(sel2, "gS")
	if err != nil {
		t.Fatal(err)
	}

	// Two consecutive nests first (a depth-2 relation), then both linking
	// selections: the deep one applied Within each S-group.
	d1, err := Nest(temp1,
		[]string{"R.B", "R.C", "R.D", "S.E", "S.H", "S.I"},
		[]string{"T.J", "T.L"}, "gT")
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Nest(d1, []string{"R.B", "R.C", "R.D"}, []string{"S.E", "S.H", "S.I"}, "gS")
	if err != nil {
		t.Fatal(err)
	}
	if d2.Schema.Depth() != 2 {
		t.Fatalf("expected a two-level nested relation, depth=%d", d2.Schema.Depth())
	}
	deepSelected, err := Within(d2, "gS", func(g *relation.Relation) (*relation.Relation, error) {
		padded, err := LinkSelectPad(g, AllPred("S.H", expr.Gt, "gT", "T.J", "T.L"),
			[]string{"S.E", "S.H", "S.I"})
		if err != nil {
			return nil, err
		}
		return DropSub(padded, "gT")
	})
	if err != nil {
		t.Fatal(err)
	}
	outSel, err := LinkSelect(deepSelected, AllPred("R.B", expr.Ne, "gS", "S.E", "S.I"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := DropSub(outSel, "gS")
	if err != nil {
		t.Fatal(err)
	}

	if !got.EqualSet(want) {
		t.Fatalf("two-level nest evaluation differs:\n%s\nvs\n%s", got, want)
	}
}
