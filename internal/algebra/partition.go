package algebra

import (
	"hash/fnv"

	"nra/internal/relation"
)

// This file states the partition-safety contracts that make the nested
// relational pipeline embarrassingly parallel, and provides the hash
// partitioner the parallel executor is built on.
//
// The paper reduces every linking operator to the same physical shape:
// a chain of outer hash joins followed by nest υ_{N1,N2} plus a linking
// selection. Both halves partition cleanly:
//
//   - An equi-join partitions by the join key: tuples with equal keys land
//     in the same partition, so per-partition build + probe computes the
//     same matches as a global hash table. NULL join keys match nothing
//     (SQL equality), so their placement is irrelevant to join results —
//     only outer-join padding, which is decided per left tuple.
//   - Nest and the linking selection partition by the nesting key N1:
//     a group never spans partitions (tuples with identical keys hash
//     identically — KeyOn's canonical encoding makes NULL keys equal, as
//     GROUP BY requires), and every linking predicate is PartitionSafe:
//     its verdict for a group depends only on that group's members.

// PartitionKey returns the partition index in [0,p) for a tuple's key
// columns. Tuples with identical key values (NULLs compare equal, as in
// grouping) always map to the same partition.
func PartitionKey(t relation.Tuple, keys []int, p int) int {
	h := fnv.New64a()
	var buf []byte
	for _, k := range keys {
		buf = t.Atoms[k].AppendKey(buf[:0])
		h.Write(buf)
	}
	return int(h.Sum64() % uint64(p))
}

// HashPartition splits r's tuple positions into p partitions by the hash
// of the given key columns. Within each partition, positions keep the
// input order — the property that lets a partitioned operator reproduce
// the serial operator's per-key ordering. The partition assignment itself
// is computed in a single pass and is deterministic.
func HashPartition(r *relation.Relation, keys []int, p int) [][]int {
	parts := make([][]int, p)
	if p == 1 {
		parts[0] = make([]int, r.Len())
		for i := range parts[0] {
			parts[0][i] = i
		}
		return parts
	}
	for i, t := range r.Tuples {
		w := PartitionKey(t, keys, p)
		parts[w] = append(parts[w], i)
	}
	return parts
}

// SpillChunks splits tuples into consecutive ranges whose summed weight
// (per the given sizing function) stays within maxBytes each, always
// admitting at least one tuple per chunk so a single oversized tuple
// cannot stall progress. It returns range bounds: chunk i is
// tuples[bounds[i]:bounds[i+1]], and len(bounds) ≥ 2 even for empty
// input.
//
// This is the spill-safe partitioning contract the budget-governed
// executor relies on: unlike HashPartition, chunks are *consecutive*
// input ranges, so processing chunks in order preserves the input order
// — a chunked build side replays the serial hash join's match order
// (buckets list build rows ascending), and external-sort runs over
// consecutive ranges plus an original-position tie-break reproduce a
// stable sort exactly. Any future spill strategy must preserve this
// order property or results would depend on the memory budget.
func SpillChunks(tuples []relation.Tuple, weight func(relation.Tuple) int64, maxBytes int64) []int {
	bounds := []int{0}
	var acc int64
	for i, t := range tuples {
		w := weight(t)
		if acc > 0 && acc+w > maxBytes {
			bounds = append(bounds, i)
			acc = 0
		}
		acc += w
	}
	return append(bounds, len(tuples))
}

// PartitionSafe reports whether the linking predicate may be evaluated
// independently on any partitioning of its input that keeps each nest
// group whole. This holds for every predicate form of Definition 4 —
// EXISTS / NOT EXISTS (member counting), IN / NOT IN / θ SOME / θ ALL
// (3VL OR- and AND-folds over the group's members), and the scalar-
// aggregate comparisons (aggregate folds) — because each verdict reads
// only the group's own members and the group's linking attribute; no
// state crosses group boundaries. The method exists as an explicit
// contract point: a future predicate form that breaks the property (for
// example one comparing against a global aggregate) must return false
// here, and the parallel executor will fall back to serial evaluation.
func (p LinkPred) PartitionSafe() bool {
	return true
}
