package algebra

import (
	"fmt"

	"nra/internal/value"
)

// AggFunc identifies an aggregate function for scalar-aggregate linking
// predicates (A θ (SELECT agg(B) ...)). The paper focuses on non-aggregate
// subqueries, but §2 analyses the classical count/max rewrites — and the
// nested representation computes aggregates naturally: the subquery's
// per-outer-tuple set is already materialised as a group, so the aggregate
// is a fold over the group's real members.
type AggFunc uint8

// The aggregate functions. AggNone marks an ordinary quantified predicate.
const (
	AggNone AggFunc = iota
	AggCountStar
	AggCount // COUNT(col): non-NULL values only
	AggSum
	AggAvg
	AggMin
	AggMax
)

// String returns the SQL spelling.
func (f AggFunc) String() string {
	switch f {
	case AggCountStar:
		return "COUNT(*)"
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	default:
		return "NONE"
	}
}

// AggFuncByName maps SQL names to functions (COUNT resolves to AggCount;
// callers use AggCountStar for COUNT(*)).
func AggFuncByName(name string) (AggFunc, bool) {
	switch name {
	case "COUNT":
		return AggCount, true
	case "SUM":
		return AggSum, true
	case "AVG":
		return AggAvg, true
	case "MIN":
		return AggMin, true
	case "MAX":
		return AggMax, true
	}
	return AggNone, false
}

// AggState folds values into an aggregate under SQL semantics: NULL
// inputs are skipped (except COUNT(*), which counts rows), the empty
// fold yields NULL (except COUNT/COUNT(*), which yield 0), integer sums
// stay integral, AVG is always floating point.
type AggState struct {
	fn      AggFunc
	rows    int64
	count   int64
	sumI    int64
	sumF    float64
	isFloat bool
	extreme value.Value
}

// NewAggState returns a fresh accumulator for fn.
func NewAggState(fn AggFunc) *AggState { return &AggState{fn: fn, extreme: value.Null} }

// AddRow records one row for COUNT(*); other functions ignore it.
func (s *AggState) AddRow() { s.rows++ }

// Add folds one column value.
func (s *AggState) Add(v value.Value) error {
	s.rows++
	if v.IsNull() {
		return nil
	}
	s.count++
	switch s.fn {
	case AggCount, AggCountStar:
		return nil
	case AggSum, AggAvg:
		switch v.Kind() {
		case value.KindInt:
			s.sumI += v.Int64()
			s.sumF += float64(v.Int64())
		case value.KindFloat:
			s.isFloat = true
			s.sumF += v.Float64()
		default:
			return fmt.Errorf("algebra: %s over %s", s.fn, v.Kind())
		}
		return nil
	case AggMin, AggMax:
		if s.extreme.IsNull() {
			s.extreme = v
			return nil
		}
		cmp, known, err := value.Compare(v, s.extreme)
		if err != nil {
			return err
		}
		if known && ((s.fn == AggMin && cmp < 0) || (s.fn == AggMax && cmp > 0)) {
			s.extreme = v
		}
		return nil
	}
	return fmt.Errorf("algebra: Add on %s", s.fn)
}

// Result returns the aggregate value.
func (s *AggState) Result() value.Value {
	switch s.fn {
	case AggCountStar:
		return value.Int(s.rows)
	case AggCount:
		return value.Int(s.count)
	case AggSum:
		if s.count == 0 {
			return value.Null
		}
		if s.isFloat {
			return value.Float(s.sumF)
		}
		return value.Int(s.sumI)
	case AggAvg:
		if s.count == 0 {
			return value.Null
		}
		return value.Float(s.sumF / float64(s.count))
	case AggMin, AggMax:
		return s.extreme
	}
	return value.Null
}
