package algebra

import (
	"fmt"

	"nra/internal/relation"
)

// checkUnionCompatible verifies the schemas have the same shape (column
// count and nesting); names may differ (the left schema wins, SQL-style).
func checkUnionCompatible(op string, l, r *relation.Schema) error {
	if len(l.Cols) != len(r.Cols) || len(l.Subs) != len(r.Subs) {
		return fmt.Errorf("%s: incompatible schemas %s and %s", op, l, r)
	}
	for i := range l.Subs {
		if err := checkUnionCompatible(op, l.Subs[i].Schema, r.Subs[i].Schema); err != nil {
			return err
		}
	}
	return nil
}

// Union returns l ∪ r with set semantics.
func Union(l, r *relation.Relation) (*relation.Relation, error) {
	if err := checkUnionCompatible("union", l.Schema, r.Schema); err != nil {
		return nil, err
	}
	out := relation.New(l.Schema)
	seen := make(map[string]struct{}, len(l.Tuples)+len(r.Tuples))
	for _, rel := range []*relation.Relation{l, r} {
		for _, t := range rel.Tuples {
			k := t.Key()
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
			out.Append(t)
		}
	}
	return out, nil
}

// Intersect returns l ∩ r with set semantics.
func Intersect(l, r *relation.Relation) (*relation.Relation, error) {
	if err := checkUnionCompatible("intersect", l.Schema, r.Schema); err != nil {
		return nil, err
	}
	right := make(map[string]struct{}, len(r.Tuples))
	for _, t := range r.Tuples {
		right[t.Key()] = struct{}{}
	}
	out := relation.New(l.Schema)
	emitted := make(map[string]struct{})
	for _, t := range l.Tuples {
		k := t.Key()
		if _, ok := right[k]; !ok {
			continue
		}
		if _, dup := emitted[k]; dup {
			continue
		}
		emitted[k] = struct{}{}
		out.Append(t)
	}
	return out, nil
}

// Difference returns l − r with set semantics.
func Difference(l, r *relation.Relation) (*relation.Relation, error) {
	if err := checkUnionCompatible("difference", l.Schema, r.Schema); err != nil {
		return nil, err
	}
	right := make(map[string]struct{}, len(r.Tuples))
	for _, t := range r.Tuples {
		right[t.Key()] = struct{}{}
	}
	out := relation.New(l.Schema)
	emitted := make(map[string]struct{})
	for _, t := range l.Tuples {
		k := t.Key()
		if _, ok := right[k]; ok {
			continue
		}
		if _, dup := emitted[k]; dup {
			continue
		}
		emitted[k] = struct{}{}
		out.Append(t)
	}
	return out, nil
}
