package algebra

import (
	"nra/internal/relation"
)

// The ALL variants of the set operations use SQL's multiset (bag)
// semantics: UNION ALL concatenates, INTERSECT ALL keeps min(m, n)
// copies of a row occurring m and n times, EXCEPT ALL keeps max(0, m−n).
// NULLs group as identical, as in the set variants.

// UnionAll returns the bag union (concatenation).
func UnionAll(l, r *relation.Relation) (*relation.Relation, error) {
	if err := checkUnionCompatible("union all", l.Schema, r.Schema); err != nil {
		return nil, err
	}
	out := relation.New(l.Schema)
	out.Append(l.Tuples...)
	out.Append(r.Tuples...)
	return out, nil
}

// IntersectAll returns the bag intersection.
func IntersectAll(l, r *relation.Relation) (*relation.Relation, error) {
	if err := checkUnionCompatible("intersect all", l.Schema, r.Schema); err != nil {
		return nil, err
	}
	counts := make(map[string]int, r.Len())
	for _, t := range r.Tuples {
		counts[t.Key()]++
	}
	out := relation.New(l.Schema)
	for _, t := range l.Tuples {
		k := t.Key()
		if counts[k] > 0 {
			counts[k]--
			out.Append(t)
		}
	}
	return out, nil
}

// ExceptAll returns the bag difference.
func ExceptAll(l, r *relation.Relation) (*relation.Relation, error) {
	if err := checkUnionCompatible("except all", l.Schema, r.Schema); err != nil {
		return nil, err
	}
	counts := make(map[string]int, r.Len())
	for _, t := range r.Tuples {
		counts[t.Key()]++
	}
	out := relation.New(l.Schema)
	for _, t := range l.Tuples {
		k := t.Key()
		if counts[k] > 0 {
			counts[k]--
			continue
		}
		out.Append(t)
	}
	return out, nil
}
