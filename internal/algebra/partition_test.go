package algebra

import (
	"math/rand"
	"testing"

	"nra/internal/relation"
)

func partRel(n int, rng *rand.Rand) *relation.Relation {
	rows := make([][]any, n)
	for i := range rows {
		var k any
		if rng.Float64() < 0.1 {
			k = nil
		} else {
			k = rng.Intn(31)
		}
		rows[i] = []any{k, i}
	}
	return relation.MustFromRows("r", []string{"k", "v"}, rows...)
}

func TestHashPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rel := partRel(2000, rng)
	keys := []int{0}
	for _, p := range []int{1, 2, 3, 8} {
		parts := HashPartition(rel, keys, p)
		if len(parts) != p {
			t.Fatalf("p=%d: got %d partitions", p, len(parts))
		}
		seen := make([]bool, rel.Len())
		for pi, idxs := range parts {
			prev := -1
			for _, i := range idxs {
				if seen[i] {
					t.Fatalf("p=%d: row %d in two partitions", p, i)
				}
				seen[i] = true
				// Order-preserving: index lists must ascend, so per-key
				// input order survives partitioned processing.
				if i <= prev {
					t.Fatalf("p=%d partition %d: indexes not ascending", p, pi)
				}
				prev = i
				// Same key must always land in the same partition.
				if got := PartitionKey(rel.Tuples[i], keys, p); got != pi {
					t.Fatalf("p=%d: row %d keyed to %d but placed in %d", p, i, got, pi)
				}
			}
		}
		for i, ok := range seen {
			if !ok {
				t.Fatalf("p=%d: row %d dropped", p, i)
			}
		}
	}
}

func TestPartitionKeyDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	rel := partRel(500, rng)
	keys := []int{0}
	for _, tu := range rel.Tuples {
		a := PartitionKey(tu, keys, 7)
		b := PartitionKey(tu, keys, 7)
		if a != b {
			t.Fatalf("PartitionKey not deterministic for %v", tu)
		}
		if a < 0 || a >= 7 {
			t.Fatalf("PartitionKey out of range: %d", a)
		}
	}
}

func TestLinkPredPartitionSafe(t *testing.T) {
	preds := []LinkPred{
		ExistsPred("sub", "pk"),
		NotExistsPred("sub", "pk"),
		SomePred("a", 0, "sub", "b", "pk"),
		AllPred("a", 0, "sub", "b", "pk"),
		AggPred("a", 0, AggMax, "sub", "b", "pk"),
	}
	for _, p := range preds {
		if !p.PartitionSafe() {
			t.Errorf("%+v: expected group-local predicate to be partition-safe", p)
		}
	}
}
