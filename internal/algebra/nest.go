package algebra

import (
	"fmt"

	"nra/internal/relation"
	"nra/internal/value"
)

// Nest implements the paper's re-parameterised nest operator υ_{N1,N2}(r)
// (Definition 3, extended to nested inputs as §3 allows): group r by the
// nesting attributes N1, collecting the nested attributes N2 — together
// with any subschemas r already has — into a new set-valued attribute.
// There is an implicit projection onto N1 ∪ N2 (plus existing subschemas,
// which ride along inside the new group, giving the multi-level nesting of
// §4.2.1).
//
// Grouping treats NULL keys as equal (like GROUP BY), and groups whose
// members are all NULL-padded (primary key NULL) are how the approach
// represents an empty subquery result — see LinkPred.
//
// subName names the new nested attribute. Nest uses hashing; NestSort is
// the sort-based physical alternative.
func Nest(r *relation.Relation, by, keep []string, subName string) (*relation.Relation, error) {
	byIdx, keepIdx, schema, err := nestSchema(r, by, keep, subName)
	if err != nil {
		return nil, err
	}
	out := relation.New(schema)
	groupOf := make(map[string]int, len(r.Tuples))
	for _, t := range r.Tuples {
		k := t.KeyOn(byIdx)
		gi, ok := groupOf[k]
		if !ok {
			gi = out.Len()
			groupOf[k] = gi
			out.Append(newGroupTuple(t, byIdx, schema))
		}
		g := out.Tuples[gi].Groups[len(out.Tuples[gi].Groups)-1]
		g.Append(memberTuple(t, keepIdx))
	}
	return out, nil
}

// NestSort is Nest implemented by physically sorting on N1 and grouping
// adjacent runs — the "realistic possibility" the paper's stored-procedure
// implementation used. The result is identical to Nest up to tuple order.
func NestSort(r *relation.Relation, by, keep []string, subName string) (*relation.Relation, error) {
	byIdx, keepIdx, schema, err := nestSchema(r, by, keep, subName)
	if err != nil {
		return nil, err
	}
	sorted := &relation.Relation{Schema: r.Schema, Tuples: append([]relation.Tuple(nil), r.Tuples...)}
	sorted.SortBy(by...)
	out := relation.New(schema)
	var lastKey string
	for i, t := range sorted.Tuples {
		k := t.KeyOn(byIdx)
		if i == 0 || k != lastKey {
			out.Append(newGroupTuple(t, byIdx, schema))
			lastKey = k
		}
		g := out.Tuples[out.Len()-1].Groups[len(out.Tuples[out.Len()-1].Groups)-1]
		g.Append(memberTuple(t, keepIdx))
	}
	return out, nil
}

func nestSchema(r *relation.Relation, by, keep []string, subName string) (byIdx, keepIdx []int, schema *relation.Schema, err error) {
	used := make(map[string]bool, len(by)+len(keep))
	byIdx = make([]int, len(by))
	for i, c := range by {
		j := r.Schema.ColIndex(c)
		if j < 0 {
			return nil, nil, nil, fmt.Errorf("nest: unknown nesting attribute %q in %s", c, r.Schema)
		}
		byIdx[i] = j
		if used[c] {
			return nil, nil, nil, fmt.Errorf("nest: attribute %q repeated", c)
		}
		used[c] = true
	}
	keepIdx = make([]int, len(keep))
	for i, c := range keep {
		j := r.Schema.ColIndex(c)
		if j < 0 {
			return nil, nil, nil, fmt.Errorf("nest: unknown nested attribute %q in %s", c, r.Schema)
		}
		keepIdx[i] = j
		if used[c] {
			return nil, nil, nil, fmt.Errorf("nest: attribute %q in both N1 and N2", c)
		}
		used[c] = true
	}

	inner := &relation.Schema{Name: subName}
	for _, j := range keepIdx {
		inner.Cols = append(inner.Cols, r.Schema.Cols[j])
	}
	inner.Subs = append(inner.Subs, r.Schema.Subs...)

	schema = &relation.Schema{Name: r.Schema.Name}
	for _, j := range byIdx {
		schema.Cols = append(schema.Cols, r.Schema.Cols[j])
	}
	schema.Subs = []relation.Sub{{Name: subName, Schema: inner}}
	return byIdx, keepIdx, schema, nil
}

func newGroupTuple(t relation.Tuple, byIdx []int, schema *relation.Schema) relation.Tuple {
	nt := relation.Tuple{Atoms: make([]value.Value, len(byIdx))}
	for i, j := range byIdx {
		nt.Atoms[i] = t.Atoms[j]
	}
	nt.Groups = []*relation.Relation{relation.New(schema.Subs[0].Schema)}
	return nt
}

func memberTuple(t relation.Tuple, keepIdx []int) relation.Tuple {
	m := relation.Tuple{Atoms: make([]value.Value, len(keepIdx))}
	for i, j := range keepIdx {
		m.Atoms[i] = t.Atoms[j]
	}
	m.Groups = t.Groups
	return m
}

// Unnest is the inverse of nest: it flattens the named subschema, emitting
// one tuple per group member. Tuples whose group is empty vanish, which is
// why nest∘unnest is the identity only on relations built by nest (the
// classical partial-inverse property; see the property tests).
func Unnest(r *relation.Relation, sub string) (*relation.Relation, error) {
	si := r.Schema.SubIndex(sub)
	if si < 0 {
		return nil, fmt.Errorf("unnest: no subschema %q in %s", sub, r.Schema)
	}
	inner := r.Schema.Subs[si].Schema
	schema := &relation.Schema{Name: r.Schema.Name}
	schema.Cols = append(append([]relation.Column{}, r.Schema.Cols...), inner.Cols...)
	for i, s := range r.Schema.Subs {
		if i != si {
			schema.Subs = append(schema.Subs, s)
		}
	}
	schema.Subs = append(schema.Subs, inner.Subs...)

	out := relation.New(schema)
	for _, t := range r.Tuples {
		g := t.Groups[si]
		if g == nil {
			continue
		}
		for _, m := range g.Tuples {
			nt := relation.Tuple{Atoms: make([]value.Value, 0, len(schema.Cols))}
			nt.Atoms = append(append(nt.Atoms, t.Atoms...), m.Atoms...)
			for i, og := range t.Groups {
				if i != si {
					nt.Groups = append(nt.Groups, og)
				}
			}
			nt.Groups = append(nt.Groups, m.Groups...)
			out.Append(nt)
		}
	}
	return out, nil
}
