// Command figures regenerates the paper's evaluation figures (Figures 4–9
// of Cao & Badia, SIGMOD 2005), the in-text intermediate-result processing
// tables, and the §4.2 ablation study. Each figure prints two series sets:
// measured in-memory wall time, and the modeled disk-resident cost that is
// comparable to the paper's cold-cache 2005 testbed (see DESIGN.md §5 and
// internal/iomodel).
//
// Usage:
//
//	figures [-sf 0.01] [-runs 3] [-seed 42] [-nulls 0] [-fig fig4,...]
//	        [-ablation] [-parallel] [-costbased] [-twovl] [-vectorized]
//	        [-tracing] [-trace]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"nra/internal/bench"
)

func main() {
	var (
		sf       = flag.Float64("sf", 0.01, "TPC-H scale factor (paper used 1.0)")
		runs     = flag.Int("runs", 3, "timed repetitions per point (minimum reported)")
		seed     = flag.Uint64("seed", 42, "generator seed")
		nulls    = flag.Float64("nulls", 0, "NULL fraction in measure columns")
		only     = flag.String("fig", "", "comma-separated figure ids to run (default: all)")
		ablation = flag.Bool("ablation", false, "also run the §4.2 ablation study")
		parallel = flag.Bool("parallel", false, "also run the parallel-vs-serial ablation (serial / P=2 / P=4 / P=8)")
		costb    = flag.Bool("costbased", false, "also run the cost-based vs heuristic planner ablation")
		twovl    = flag.Bool("twovl", false, "also run the 2VL vs 3VL ablation (needs -nulls 0)")
		vecf     = flag.Bool("vectorized", false, "also run the vectorized (batch-at-a-time) vs row ablation")
		trace    = flag.Bool("trace", false, "also render a span waterfall for each workload query (Query 1/2b/3b/3c)")
		tracing  = flag.Bool("tracing", false, "also run the tracing-overhead ablation (untraced vs traced)")
		noverify = flag.Bool("noverify", false, "skip cross-strategy result verification")
	)
	flag.Parse()

	cfg := bench.Config{SF: *sf, Runs: *runs, Seed: *seed, NullFraction: *nulls, Verify: !*noverify}
	fmt.Printf("# nested relational approach — figure regeneration (sf=%g, seed=%d, runs=%d, nulls=%g)\n\n",
		*sf, *seed, *runs, *nulls)

	if *only != "" {
		if err := runSelected(cfg, strings.Split(*only, ",")); err != nil {
			fail(err)
		}
	} else {
		figs, err := bench.AllFigures(cfg)
		if err != nil {
			fail(err)
		}
		for _, f := range figs {
			fmt.Println(f.Format())
		}
	}

	if *ablation || *parallel || *costb || *twovl || *vecf || *trace || *tracing {
		env, err := bench.NewEnv(cfg)
		if err != nil {
			fail(err)
		}
		if *ablation {
			figs, err := env.Ablation()
			if err != nil {
				fail(err)
			}
			for _, f := range figs {
				fmt.Println(f.Format())
			}
		}
		if *parallel {
			figs, err := env.ParallelAblation()
			if err != nil {
				fail(err)
			}
			for _, f := range figs {
				fmt.Println(f.Format())
			}
		}
		if *costb {
			figs, err := env.CostAblation()
			if err != nil {
				fail(err)
			}
			for _, f := range figs {
				fmt.Println(f.Format())
			}
		}
		if *twovl {
			figs, err := env.TwoVLAblation()
			if err != nil {
				fail(err)
			}
			for _, f := range figs {
				fmt.Println(f.Format())
			}
		}
		if *vecf {
			figs, err := env.VecAblation()
			if err != nil {
				fail(err)
			}
			for _, f := range figs {
				fmt.Println(f.Format())
			}
		}
		if *tracing {
			figs, err := env.TracingAblation()
			if err != nil {
				fail(err)
			}
			for _, f := range figs {
				fmt.Println(f.Format())
			}
		}
		if *trace {
			tfs, err := env.TraceWaterfalls()
			if err != nil {
				fail(err)
			}
			for _, tf := range tfs {
				fmt.Printf("## %s — %s\n\n%s\n%s\n", tf.ID, tf.Title, tf.SQL, tf.Text)
			}
		}
	}
}

func runSelected(cfg bench.Config, ids []string) error {
	env, err := bench.NewEnv(cfg)
	if err != nil {
		return err
	}
	for _, id := range ids {
		var figs []*bench.Figure
		switch strings.TrimSpace(id) {
		case "fig4":
			f, err := env.Fig4()
			if err != nil {
				return err
			}
			figs = append(figs, f)
		case "fig4-notnull":
			f, err := env.Fig4NotNull()
			if err != nil {
				return err
			}
			figs = append(figs, f)
		case "fig5":
			f, err := env.Fig5()
			if err != nil {
				return err
			}
			figs = append(figs, f)
		case "fig6":
			f, err := env.Fig6()
			if err != nil {
				return err
			}
			figs = append(figs, f)
		case "fig7":
			fs, err := env.Fig7()
			if err != nil {
				return err
			}
			figs = fs
		case "fig8":
			fs, err := env.Fig8()
			if err != nil {
				return err
			}
			figs = fs
		case "fig9":
			fs, err := env.Fig9()
			if err != nil {
				return err
			}
			figs = fs
		case "proc-q1":
			f, err := env.ProcQ1()
			if err != nil {
				return err
			}
			figs = append(figs, f)
		case "proc-q2":
			f, err := env.ProcQ2()
			if err != nil {
				return err
			}
			figs = append(figs, f)
		case "ablation":
			fs, err := env.Ablation()
			if err != nil {
				return err
			}
			figs = fs
		case "parallelism":
			fs, err := env.ParallelAblation()
			if err != nil {
				return err
			}
			figs = fs
		case "costbased":
			fs, err := env.CostAblation()
			if err != nil {
				return err
			}
			figs = fs
		case "twovl":
			fs, err := env.TwoVLAblation()
			if err != nil {
				return err
			}
			figs = fs
		case "vectorized":
			fs, err := env.VecAblation()
			if err != nil {
				return err
			}
			figs = fs
		default:
			return fmt.Errorf("unknown figure id %q", id)
		}
		for _, f := range figs {
			fmt.Println(f.Format())
		}
	}
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "figures:", err)
	os.Exit(1)
}
