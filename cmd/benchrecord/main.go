// Command benchrecord runs the benchmark suites and records a machine-
// readable result file, failing when modeled cost regresses against a
// committed baseline.
//
// Usage:
//
//	benchrecord [-out BENCH_<date>.json] [-dir .] [-baseline auto]
//	            [-threshold 0.20] [-sf 0.005] [-runs 1] [-seed 42]
//
// It executes the paper's figure suite (Figures 4–9 with variants) plus
// the cost-based, parallelism, 2VL and vectorized ablations, and emits
// one JSON
// record with per-query wall and modeled milliseconds for every series.
// The regression gate compares *modeled* milliseconds — the
// deterministic disk-resident cost of the executed plan, immune to
// machine noise — per (figure, label, series) against the newest
// committed BENCH_*.json in -dir, and exits non-zero when any entry
// regresses by more than -threshold (wall times are recorded for
// information only). With no baseline present it records the first one.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"nra"
	"nra/internal/bench"
	"nra/internal/catalog"
	"nra/internal/csvio"
	"nra/internal/service"
	"nra/internal/tpch"
)

// entry is one measured (figure, point, series) cell.
type entry struct {
	Figure    string  `json:"figure"`
	Label     string  `json:"label"`
	Series    string  `json:"series"`
	Rows      int     `json:"rows"`
	WallMS    float64 `json:"wall_ms"`
	ModeledMS float64 `json:"modeled_ms,omitempty"`
}

// record is the BENCH_<date>.json document.
type record struct {
	Date      string  `json:"date"`
	SF        float64 `json:"sf"`
	Runs      int     `json:"runs"`
	Seed      uint64  `json:"seed"`
	Threshold float64 `json:"threshold"`
	Entries   []entry `json:"entries"`
}

func main() {
	var (
		dir       = flag.String("dir", ".", "directory holding committed BENCH_*.json baselines")
		out       = flag.String("out", "", "output file (default <dir>/BENCH_<date>.json)")
		baseline  = flag.String("baseline", "auto", "baseline file, 'auto' (newest BENCH_*.json in -dir), or 'none'")
		threshold = flag.Float64("threshold", 0.20, "maximum allowed modeled-ms regression, as a fraction")
		sf        = flag.Float64("sf", 0.005, "TPC-H scale factor")
		runs      = flag.Int("runs", 1, "timed repetitions per point (minimum is reported)")
		seed      = flag.Uint64("seed", 42, "deterministic generator seed")
		qps       = flag.Bool("qps", true, "run the service throughput sweep (P50/P99 at several concurrency levels, plan cache on and off)")
		coldload  = flag.Bool("coldload", true, "run the storage cold-start suite (load milliseconds and bytes on disk, columnar vs CSV)")
	)
	flag.Parse()

	date := time.Now().Format("2006-01-02")
	if *out == "" {
		*out = filepath.Join(*dir, fmt.Sprintf("BENCH_%s.json", date))
	}

	rec := record{Date: date, SF: *sf, Runs: *runs, Seed: *seed, Threshold: *threshold}
	cfg := bench.Config{SF: *sf, Runs: *runs, Seed: *seed, Verify: true}

	figs, err := bench.AllFigures(cfg)
	if err != nil {
		fail(fmt.Errorf("figures: %w", err))
	}
	rec.Entries = append(rec.Entries, collect(figs)...)

	env, err := bench.NewEnv(cfg)
	if err != nil {
		fail(err)
	}
	for _, suite := range []struct {
		name string
		run  func() ([]*bench.Figure, error)
	}{
		{"cost ablation", env.CostAblation},
		{"parallel ablation", env.ParallelAblation},
		{"2VL ablation", env.TwoVLAblation},
		{"vectorized ablation", env.VecAblation},
	} {
		figs, err := suite.run()
		if err != nil {
			fail(fmt.Errorf("%s: %w", suite.name, err))
		}
		rec.Entries = append(rec.Entries, collect(figs)...)
	}

	if *qps {
		qpsEntries, err := runQPS(*sf, *seed)
		if err != nil {
			fail(fmt.Errorf("qps sweep: %w", err))
		}
		rec.Entries = append(rec.Entries, qpsEntries...)
	}

	if *coldload {
		loadEntries, err := runColstoreLoad(*sf, *seed, *runs)
		if err != nil {
			fail(fmt.Errorf("colstore-load suite: %w", err))
		}
		rec.Entries = append(rec.Entries, loadEntries...)
	}

	sort.Slice(rec.Entries, func(i, j int) bool {
		a, b := rec.Entries[i], rec.Entries[j]
		if a.Figure != b.Figure {
			return a.Figure < b.Figure
		}
		if a.Label != b.Label {
			return a.Label < b.Label
		}
		return a.Series < b.Series
	})

	base, basePath, err := loadBaseline(*baseline, *dir, *out)
	if err != nil {
		fail(err)
	}

	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fail(err)
	}
	if parent := filepath.Dir(*out); parent != "." {
		if err := os.MkdirAll(parent, 0o755); err != nil {
			fail(err)
		}
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("benchrecord: %d entries written to %s\n", len(rec.Entries), *out)

	if base == nil {
		fmt.Println("benchrecord: no baseline found — this run is the first baseline")
		return
	}
	regressions := compare(base, &rec, *threshold)
	if len(regressions) == 0 {
		fmt.Printf("benchrecord: no modeled regressions > %.0f%% vs %s\n", *threshold*100, basePath)
		return
	}
	fmt.Fprintf(os.Stderr, "benchrecord: %d modeled regression(s) > %.0f%% vs %s:\n",
		len(regressions), *threshold*100, basePath)
	for _, r := range regressions {
		fmt.Fprintln(os.Stderr, "  "+r)
	}
	os.Exit(1)
}

// runQPS sweeps service-path throughput on a TPC-H instance: two
// correlated subqueries driven through sessions, admission and the plan
// cache at several concurrency levels, cache on and off. Latencies are
// wall time, so the entries carry no modeled milliseconds and are
// recorded for information, not gated.
func runQPS(sf float64, seed uint64) ([]entry, error) {
	cfg := nra.TPCHScale(sf)
	cfg.Seed = seed
	db, err := nra.OpenTPCH(cfg)
	if err != nil {
		return nil, err
	}
	if err := db.Analyze(); err != nil {
		return nil, err
	}
	pts, err := service.RunQPS(db, service.QPSConfig{
		Queries: []string{
			`select o_orderkey from orders where o_totalprice > all
			   (select l_extendedprice from lineitem where l_orderkey = o_orderkey)`,
			`select c_custkey from customer where exists
			   (select * from orders where o_custkey = c_custkey)`,
		},
		Concurrency: []int{1, 4, 16},
		PerWorker:   25,
	})
	if err != nil {
		return nil, err
	}
	var out []entry
	for _, p := range pts {
		series := "cache-off"
		if p.CacheOn {
			series = "cache-on"
		}
		label := fmt.Sprintf("C=%d", p.Concurrency)
		ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
		out = append(out,
			entry{Figure: "service-qps", Label: label, Series: series + " p50", Rows: p.Queries, WallMS: ms(p.P50)},
			entry{Figure: "service-qps", Label: label, Series: series + " p99", Rows: p.Queries, WallMS: ms(p.P99)},
			entry{Figure: "service-qps", Label: label, Series: series + " mean", Rows: p.Queries, WallMS: 1e3 * float64(p.Concurrency) / p.QPS},
		)
	}
	return out, nil
}

// runColstoreLoad measures the cold-start cost of the two on-disk
// table formats. One deterministic TPC-H catalog is saved twice — as
// binary columnar segments and as CSV — and each directory is timed
// through a fresh load (minimum over -runs repetitions). Bytes on disk
// are recorded alongside so the size/speed trade-off lands in the same
// record. Load times are wall time, so like the qps sweep these
// entries carry no modeled milliseconds and are not gated.
func runColstoreLoad(sf float64, seed uint64, runs int) ([]entry, error) {
	cfg := tpch.Scale(sf)
	cfg.Seed = seed
	cat, err := tpch.Generate(cfg)
	if err != nil {
		return nil, err
	}
	rows := 0
	for _, name := range cat.Names() {
		tbl, err := cat.Table(name)
		if err != nil {
			return nil, err
		}
		rows += tbl.Rel.Len()
	}

	root, err := os.MkdirTemp("", "benchrecord-colstore-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(root)

	var out []entry
	for _, fc := range []struct {
		label string
		save  func(*catalog.Catalog, string, ...string) error
	}{
		{"columnar", csvio.Save},
		{"csv", csvio.SaveCSV},
	} {
		dir := filepath.Join(root, fc.label)
		if err := fc.save(cat, dir); err != nil {
			return nil, err
		}
		bytes, err := dirBytes(dir)
		if err != nil {
			return nil, err
		}
		best := time.Duration(0)
		for r := 0; r < runs || r == 0; r++ {
			start := time.Now()
			if _, err := csvio.Load(dir); err != nil {
				return nil, err
			}
			if d := time.Since(start); best == 0 || d < best {
				best = d
			}
		}
		out = append(out,
			entry{Figure: "colstore-load", Label: fc.label, Series: "cold-start",
				Rows: rows, WallMS: float64(best) / float64(time.Millisecond)},
			entry{Figure: "colstore-load", Label: fc.label, Series: "bytes-on-disk",
				Rows: int(bytes)},
		)
	}
	return out, nil
}

// dirBytes sums the sizes of all regular files under dir.
func dirBytes(dir string) (int64, error) {
	var total int64
	err := filepath.WalkDir(dir, func(_ string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		total += info.Size()
		return nil
	})
	return total, err
}

// collect flattens figures into entries.
func collect(figs []*bench.Figure) []entry {
	var out []entry
	for _, f := range figs {
		for _, p := range f.Points {
			for series, d := range p.Times {
				e := entry{
					Figure: f.ID,
					Label:  p.Label,
					Series: series,
					Rows:   p.Rows,
					WallMS: float64(d) / float64(time.Millisecond),
				}
				if m, ok := p.Modeled[series]; ok {
					e.ModeledMS = float64(m) / float64(time.Millisecond)
				}
				out = append(out, e)
			}
		}
	}
	return out
}

// loadBaseline resolves the baseline record: an explicit path, the
// newest BENCH_*.json in dir other than the output file, or none.
func loadBaseline(mode, dir, out string) (*record, string, error) {
	if mode == "none" {
		return nil, "", nil
	}
	path := mode
	if mode == "auto" {
		matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
		if err != nil {
			return nil, "", err
		}
		outAbs, _ := filepath.Abs(out)
		var candidates []string
		for _, m := range matches {
			if abs, _ := filepath.Abs(m); abs != outAbs {
				candidates = append(candidates, m)
			}
		}
		if len(candidates) == 0 {
			return nil, "", nil
		}
		// BENCH_<ISO date>.json sorts chronologically by name.
		sort.Strings(candidates)
		path = candidates[len(candidates)-1]
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, "", fmt.Errorf("baseline: %w", err)
	}
	var rec record
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, "", fmt.Errorf("baseline %s: %w", path, err)
	}
	return &rec, path, nil
}

// compare returns one message per (figure, label, series) whose modeled
// milliseconds regressed beyond the threshold. Entries absent from
// either record, or without modeled values, are skipped: wall time is
// too machine-dependent to gate on.
func compare(base, cur *record, threshold float64) []string {
	idx := make(map[string]float64, len(base.Entries))
	for _, e := range base.Entries {
		if e.ModeledMS > 0 {
			idx[e.Figure+"\x00"+e.Label+"\x00"+e.Series] = e.ModeledMS
		}
	}
	var out []string
	for _, e := range cur.Entries {
		want, ok := idx[e.Figure+"\x00"+e.Label+"\x00"+e.Series]
		if !ok || e.ModeledMS <= 0 {
			continue
		}
		if e.ModeledMS > want*(1+threshold) {
			out = append(out, fmt.Sprintf("%s [%s] %s: modeled %.2fms vs baseline %.2fms (+%.0f%%)",
				e.Figure, e.Label, e.Series, e.ModeledMS, want, (e.ModeledMS/want-1)*100))
		}
	}
	return out
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchrecord:", err)
	os.Exit(1)
}
