// Command tpchgen generates the deterministic TPC-H database used by the
// experiments and writes it as binary columnar segments (or CSV files
// with -format csv) plus a JSON manifest, loadable back with
// nra.OpenDir — CSV output is additionally inspectable with any CSV
// tool. See docs/STORAGE.md for the two formats.
//
// Usage:
//
//	tpchgen [-sf 0.01] [-seed 42] [-nulls 0] [-o dir] [-format columnar|csv]
//	        [-tables lineitem,orders]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"nra/internal/csvio"
	"nra/internal/tpch"
)

func main() {
	var (
		sf     = flag.Float64("sf", 0.01, "scale factor (1.0 = the paper's 1 GB database)")
		seed   = flag.Uint64("seed", 42, "generator seed")
		nulls  = flag.Float64("nulls", 0, "NULL fraction in measure columns")
		outDir = flag.String("o", "tpch-data", "output directory")
		tables = flag.String("tables", "", "comma-separated table subset (default: all)")
		format = flag.String("format", "columnar", "on-disk table format: columnar or csv")
	)
	flag.Parse()

	ff, err := csvio.ParseFormat(*format)
	if err != nil {
		fail(err)
	}

	cfg := tpch.Scale(*sf)
	cfg.Seed = *seed
	cfg.NullFraction = *nulls
	cat, err := tpch.Generate(cfg)
	if err != nil {
		fail(err)
	}

	var subset []string
	if *tables != "" {
		for _, t := range strings.Split(*tables, ",") {
			subset = append(subset, strings.TrimSpace(t))
		}
	}
	saveAs := csvio.Save
	ext := "seg"
	if ff == csvio.FormatCSV {
		saveAs = csvio.SaveCSV
		ext = "csv"
	}
	if err := saveAs(cat, *outDir, subset...); err != nil {
		fail(err)
	}
	for _, name := range cat.Names() {
		if len(subset) > 0 && !contains(subset, name) {
			continue
		}
		tbl, _ := cat.Table(name)
		fmt.Printf("%-12s %8d rows -> %s/%s.%s\n", name, tbl.Rel.Len(), *outDir, name, ext)
	}
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tpchgen:", err)
	os.Exit(1)
}
