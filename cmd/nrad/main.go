// Command nrad serves the nested relational query engine to concurrent
// clients over one shared database: an HTTP/JSON API and a newline-
// delimited JSON line protocol (the surface nraql -connect speaks),
// with sessions, a shared prepared-plan cache, and pooled admission
// control (max-in-flight gate, bounded queue, shared memory pool,
// bounded worker slots).
//
// Usage:
//
//	nrad [-addr localhost:7432] [-line-addr localhost:7433]
//	     [-dir data/] [-storage columnar|csv] [-tpch 0.001] [-seed 42] [-analyze]
//	     [-max-inflight 16] [-queue-depth 64] [-queue-timeout 5s]
//	     [-mem-pool 256M] [-workers 8] [-plan-cache 256]
//	     [-debug-addr localhost:6060] [-slow-query 100ms] [-slow-log f]
//	     [-drain-timeout 10s]
//
// -dir opens (or creates) a durable catalog with write-ahead logging;
// -tpch loads an in-memory TPC-H instance instead. On SIGTERM or SIGINT
// the server drains: it stops admitting statements, cancels stragglers
// through their execution contexts, checkpoints the WAL (durable
// catalogs), and exits. See docs/SERVICE.md.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"nra"
	"nra/internal/obsv"
	"nra/internal/service"
)

func main() {
	var (
		addr     = flag.String("addr", "localhost:7432", "HTTP API listen address")
		lineAddr = flag.String("line-addr", "localhost:7433", "line-protocol listen address (empty = off)")
		dir      = flag.String("dir", "", "durable catalog directory (created if missing; WAL-backed)")
		sf       = flag.Float64("tpch", 0, "load an in-memory TPC-H instance at this scale factor")
		seed     = flag.Uint64("seed", 42, "TPC-H generator seed")
		anlz     = flag.Bool("analyze", true, "collect optimizer statistics at startup")
		maxIn    = flag.Int("max-inflight", 0, "max concurrently executing statements (0 = 2x GOMAXPROCS)")
		queueD   = flag.Int("queue-depth", 0, "admission queue depth beyond max-inflight (0 = 4x max-inflight)")
		queueT   = flag.Duration("queue-timeout", 5*time.Second, "max wait in the admission queue before rejection")
		memPool  = flag.String("mem-pool", "", "shared memory pool for operator working state across all statements, e.g. 256M (empty = unbounded)")
		workers  = flag.Int("workers", 0, "aggregate intra-query parallelism budget (0 = GOMAXPROCS)")
		planC    = flag.Int("plan-cache", 256, "shared plan cache capacity in statements (negative = off)")
		storage  = flag.String("storage", "columnar", "on-disk table format for saves/checkpoints: columnar or csv")
		dbg      = flag.String("debug-addr", "", "serve the debug HTTP endpoint (expvar metrics + pprof) on this address (empty = off; bind to localhost)")
		slowQ    = flag.Duration("slow-query", -1, "log queries at least this slow to the slow-query log (0 = every query, negative = off)")
		slowF    = flag.String("slow-log", "", "slow-query log destination file (JSON lines; empty = stderr)")
		drainT   = flag.Duration("drain-timeout", 10*time.Second, "max time to wait for in-flight statements during shutdown")
	)
	flag.Parse()

	db, err := openDB(*dir, *sf, *seed)
	if err != nil {
		fail(err)
	}
	defer db.Close()
	if err := db.SetStorageFormat(*storage); err != nil {
		fail(err)
	}
	if *anlz && len(db.Tables()) > 0 {
		if err := db.Analyze(); err != nil {
			fail(err)
		}
	}
	if *slowQ >= 0 {
		w := os.Stderr
		if *slowF != "" {
			f, err := os.OpenFile(*slowF, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			w = f
		}
		db.SetSlowQueryLog(w, *slowQ)
	}

	poolBytes := int64(0)
	if *memPool != "" {
		poolBytes, err = parseBytes(*memPool)
		if err != nil {
			fail(err)
		}
	}
	srv := service.New(service.Config{
		DB:            db,
		MaxInFlight:   *maxIn,
		QueueDepth:    *queueD,
		QueueTimeout:  *queueT,
		MemPoolBytes:  poolBytes,
		Workers:       *workers,
		PlanCacheSize: *planC,
		CheckpointDir: *dir,
		Registry:      obsv.Default(),
	})

	if *dbg != "" {
		dbgAddr, stop, err := obsv.ServeDebug(*dbg, obsv.Default())
		if err != nil {
			fail(err)
		}
		defer stop()
		fmt.Fprintf(os.Stderr, "nrad: debug endpoint http://%s/debug/\n", dbgAddr)
	}

	httpLn, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() {
		if err := httpSrv.Serve(httpLn); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fail(err)
		}
	}()
	fmt.Fprintf(os.Stderr, "nrad: http api on %s\n", httpLn.Addr())

	var lineLn net.Listener
	if *lineAddr != "" {
		lineLn, err = net.Listen("tcp", *lineAddr)
		if err != nil {
			fail(err)
		}
		go func() {
			if err := srv.ServeLine(lineLn); err != nil {
				fail(err)
			}
		}()
		fmt.Fprintf(os.Stderr, "nrad: line protocol on %s (nraql -connect %s)\n",
			lineLn.Addr(), lineLn.Addr())
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, os.Interrupt)
	sig := <-sigc
	fmt.Fprintf(os.Stderr, "nrad: %v — draining\n", sig)

	ctx, cancel := context.WithTimeout(context.Background(), *drainT)
	defer cancel()
	if lineLn != nil {
		lineLn.Close()
	}
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "nrad: drain:", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "nrad: http shutdown:", err)
	}
	fmt.Fprintln(os.Stderr, "nrad: stopped")
}

// openDB opens the serving database: a durable WAL-backed catalog when
// -dir is set, an in-memory TPC-H instance when -tpch is set, or an
// empty in-memory database.
func openDB(dir string, sf float64, seed uint64) (*nra.DB, error) {
	switch {
	case dir != "" && sf > 0:
		return nil, errors.New("nrad: -dir and -tpch are mutually exclusive")
	case dir != "":
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
		// Bootstrap a fresh directory: a durable open needs a committed
		// save to anchor WAL replay.
		if _, err := os.Stat(filepath.Join(dir, "catalog.json")); os.IsNotExist(err) {
			if err := nra.Open().Save(dir); err != nil {
				return nil, err
			}
		}
		return nra.OpenDirDurable(dir)
	case sf > 0:
		cfg := nra.TPCHScale(sf)
		cfg.Seed = seed
		return nra.OpenTPCH(cfg)
	}
	return nra.Open(), nil
}

// parseBytes parses a byte count with an optional K/M/G suffix (powers
// of 1024; lowercase and a trailing "B"/"iB" are accepted).
func parseBytes(s string) (int64, error) {
	orig := s
	s = strings.TrimSpace(strings.ToUpper(s))
	s = strings.TrimSuffix(s, "IB")
	s = strings.TrimSuffix(s, "B")
	shift := 0
	switch {
	case strings.HasSuffix(s, "K"):
		shift, s = 10, strings.TrimSuffix(s, "K")
	case strings.HasSuffix(s, "M"):
		shift, s = 20, strings.TrimSuffix(s, "M")
	case strings.HasSuffix(s, "G"):
		shift, s = 30, strings.TrimSuffix(s, "G")
	}
	n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("invalid -mem-pool value %q (want e.g. 65536, 64K, 16M, 1G)", orig)
	}
	if shift > 0 && n > (1<<62)>>shift {
		return 0, fmt.Errorf("-mem-pool value %q overflows", orig)
	}
	return n << shift, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "nrad:", err)
	os.Exit(1)
}
