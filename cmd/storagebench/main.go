// Command storagebench runs the storage-format ablation recorded in
// EXPERIMENTS.md: one deterministic TPC-H instance is saved both as
// binary columnar segments and as CSV, then each directory is measured
// for bytes on disk, cold-start load time, and the wall latency of the
// paper's Query 1 / Query 2b / Query 3b(a) workloads plus a selective
// primary-key range probe — CSV vs columnar, and on the columnar
// database with zone-map pruning on vs off
// (Strategy.WithZoneMapPruning). Every timed cell is verified to return
// the same multiset of rows as the CSV baseline before it is reported.
//
// Usage:
//
//	storagebench [-sf 0.01,0.1] [-runs 7] [-seed 42]
//
// See docs/STORAGE.md for the format and pruning semantics, and
// cmd/benchrecord's colstore-load suite for the machine-readable
// cold-start series gated in CI.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"nra"
)

func main() {
	var (
		sfs  = flag.String("sf", "0.01,0.1", "comma-separated TPC-H scale factors")
		runs = flag.Int("runs", 7, "timed repetitions per cell (minimum reported)")
		seed = flag.Uint64("seed", 42, "deterministic generator seed")
	)
	flag.Parse()

	for _, f := range strings.Split(*sfs, ",") {
		sf, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			fail(err)
		}
		if err := ablate(sf, *seed, *runs); err != nil {
			fail(fmt.Errorf("sf %g: %w", sf, err))
		}
	}
}

// ablate measures one scale factor end to end.
func ablate(sf float64, seed uint64, runs int) error {
	root, err := os.MkdirTemp("", "storagebench-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(root)

	cfg := nra.TPCHScale(sf)
	cfg.Seed = seed
	gen, err := nra.OpenTPCH(cfg)
	if err != nil {
		return err
	}
	dirs := map[string]string{
		"columnar": filepath.Join(root, "columnar"),
		"csv":      filepath.Join(root, "csv"),
	}
	for format, dir := range dirs {
		if err := gen.SetStorageFormat(format); err != nil {
			return err
		}
		if err := gen.Save(dir); err != nil {
			return err
		}
	}

	fmt.Printf("== sf %g (seed %d, min of %d runs) ==\n", sf, seed, runs)
	for _, format := range []string{"csv", "columnar"} {
		bytes, err := dirBytes(dirs[format])
		if err != nil {
			return err
		}
		cold, err := coldStart(dirs[format], runs)
		if err != nil {
			return err
		}
		fmt.Printf("%-8s  %9.2f MB on disk   cold start %8.1f ms\n",
			format, float64(bytes)/(1<<20), ms(cold))
	}

	dbCSV, err := nra.OpenDir(dirs["csv"])
	if err != nil {
		return err
	}
	dbCol, err := nra.OpenDir(dirs["columnar"])
	if err != nil {
		return err
	}

	queries, err := workloads(dbCol)
	if err != nil {
		return err
	}
	vec := nra.NestedOptimized.WithVectorized(true)
	cells := []struct {
		name string
		db   *nra.DB
		s    nra.Strategy
	}{
		{"csv", dbCSV, vec},
		{"columnar-noprune", dbCol, vec.WithZoneMapPruning(false)},
		{"columnar", dbCol, vec},
	}
	for _, q := range queries {
		fmt.Printf("%s:\n", q.name)
		var baseline *nra.Result
		for _, c := range cells {
			best := time.Duration(0)
			var res *nra.Result
			for r := 0; r < runs; r++ {
				start := time.Now()
				res, err = c.db.QueryWith(q.sql, c.s)
				if err != nil {
					return fmt.Errorf("%s on %s: %w", q.name, c.name, err)
				}
				if d := time.Since(start); best == 0 || d < best {
					best = d
				}
			}
			if baseline == nil {
				baseline = res
			} else if !res.Equal(baseline) {
				return fmt.Errorf("%s: %s diverged from the CSV baseline", q.name, c.name)
			}
			fmt.Printf("  %-18s %8.2f ms  (%d rows)\n", c.name, ms(best), res.NumRows())
		}
	}
	return nil
}

// query is one timed workload.
type query struct{ name, sql string }

// workloads builds the largest-point Query 1 / 2b / 3b(a) sweeps from
// EXPERIMENTS.md (cuts derived from the loaded data, like the figure
// harness) plus the selective primary-key range probe that exercises
// zone-map pruning on the clustered o_orderkey column.
func workloads(db *nra.DB) ([]query, error) {
	dateHi, err := quantile(db, "orders", "o_orderdate", 1.0)
	if err != nil {
		return nil, err
	}
	sizeHi, err := quantile(db, "part", "p_size", 1.0)
	if err != nil {
		return nil, err
	}
	availY, err := quantile(db, "partsupp", "ps_availqty", 0.5)
	if err != nil {
		return nil, err
	}
	keyCut, err := quantile(db, "orders", "o_orderkey", 0.05)
	if err != nil {
		return nil, err
	}
	q23 := `select p_partkey, p_name from part
where p_size >= 1 and p_size <= %s
  and p_retailprice < all (select ps_supplycost from partsupp
      where ps_partkey = p_partkey and ps_availqty < %s
        and %s (select * from lineitem
            where %s = l_partkey and ps_suppkey = l_suppkey
              and l_quantity = 25))`
	return []query{
		{"Q1 (fig4, largest point)", fmt.Sprintf(`select o_orderkey, o_orderpriority from orders
where o_orderdate >= '1992-01-01' and o_orderdate < '%s'
  and o_totalprice > all (select l_extendedprice from lineitem
      where l_orderkey = o_orderkey
        and l_commitdate < l_receiptdate and l_shipdate < l_commitdate)`, dateHi)},
		{"Q2b (fig6, largest point)", fmt.Sprintf(q23, sizeHi, availY, "not exists", "ps_partkey")},
		{"Q3b(a) (fig8a, largest point)", fmt.Sprintf(q23, sizeHi, availY, "not exists", "p_partkey")},
		{"PK range probe (5% of orders)", fmt.Sprintf(`select o_orderkey, o_orderpriority from orders
where o_orderkey < %s
  and o_totalprice > all (select l_extendedprice from lineitem
      where l_orderkey = o_orderkey)`, keyCut)},
	}, nil
}

// quantile returns the frac-quantile of a column as SQL literal text.
func quantile(db *nra.DB, table, col string, frac float64) (string, error) {
	res, err := db.Query(fmt.Sprintf("select %s from %s", col, table))
	if err != nil {
		return "", err
	}
	var vals []any
	for _, row := range res.Rows() {
		if row[0] != nil {
			vals = append(vals, row[0])
		}
	}
	sort.Slice(vals, func(i, j int) bool { return lessAny(vals[i], vals[j]) })
	k := int(frac * float64(len(vals)))
	if k >= len(vals) {
		k = len(vals) - 1
	}
	return fmt.Sprintf("%v", vals[k]), nil
}

func lessAny(a, b any) bool {
	switch x := a.(type) {
	case int64:
		return x < b.(int64)
	case float64:
		return x < b.(float64)
	case string:
		return x < b.(string)
	default:
		return false
	}
}

// coldStart times nra.OpenDir on a saved directory.
func coldStart(dir string, runs int) (time.Duration, error) {
	best := time.Duration(0)
	for r := 0; r < runs; r++ {
		start := time.Now()
		if _, err := nra.OpenDir(dir); err != nil {
			return 0, err
		}
		if d := time.Since(start); best == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// dirBytes sums the sizes of all regular files under dir.
func dirBytes(dir string) (int64, error) {
	var total int64
	err := filepath.WalkDir(dir, func(_ string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		total += info.Size()
		return nil
	})
	return total, err
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func fail(err error) {
	fmt.Fprintln(os.Stderr, "storagebench:", err)
	os.Exit(1)
}
