package main

import (
	"bufio"
	"fmt"
	"os"
	"strings"
	"time"

	"nra/internal/service"
)

// remoteMain is the -connect client: the same shell surface as the
// local REPL, but every statement travels the line protocol to an nrad
// server. Session state (strategy, 2VL, vectorized, parallelism,
// timeout, pinned snapshot, prepared statements) lives server-side in
// the connection's session.
func remoteMain(addr, eval string) {
	c, err := service.DialLine(addr)
	if err != nil {
		fail(fmt.Errorf("connect %s: %w", addr, err))
	}
	defer c.Close()

	if eval != "" {
		if err := remoteRun(c, eval); err != nil {
			fail(err)
		}
		return
	}

	fmt.Printf("nraql — connected to %s (session %s)\n", addr, c.Session())
	fmt.Println(`type SQL ending with ';', or \q to quit`)
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Printf("%s> ", c.Session())
		} else {
			fmt.Print("  ...> ")
		}
	}
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, `\`) {
			if quit := remoteCommand(c, trimmed); quit {
				return
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.HasSuffix(trimmed, ";") {
			src := strings.TrimSuffix(strings.TrimSpace(buf.String()), ";")
			buf.Reset()
			if err := remoteRun(c, src); err != nil {
				fmt.Println("error:", err)
			}
		}
		prompt()
	}
}

// remoteCommand executes one backslash command, reporting whether the
// shell should exit.
func remoteCommand(c *service.LineClient, trimmed string) bool {
	word := func(prefix string) string {
		return strings.TrimSuffix(strings.TrimSpace(strings.TrimPrefix(trimmed, prefix)), ";")
	}
	show := func(resp service.Response, err error) {
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		if resp.Text != "" {
			fmt.Print(resp.Text)
			if !strings.HasSuffix(resp.Text, "\n") {
				fmt.Println()
			}
		}
	}
	switch {
	case trimmed == `\q` || trimmed == `\quit`:
		return true
	case trimmed == `\tables`:
		resp, err := c.Do(service.Request{Op: service.OpTables})
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		for _, t := range resp.Tables {
			fmt.Printf("  %-12s %8d rows\n", t.Name, t.Rows)
		}
	case strings.HasPrefix(trimmed, `\strategy`):
		show(c.Do(service.Request{Op: service.OpSet, Key: "strategy", Value: word(`\strategy`)}))
	case strings.HasPrefix(trimmed, `\2vl`):
		show(c.Do(service.Request{Op: service.OpSet, Key: "2vl", Value: word(`\2vl`)}))
	case strings.HasPrefix(trimmed, `\vec`):
		show(c.Do(service.Request{Op: service.OpSet, Key: "vectorized", Value: word(`\vec`)}))
	case strings.HasPrefix(trimmed, `\set`):
		fields := strings.Fields(word(`\set`))
		if len(fields) != 2 {
			fmt.Println(`usage: \set <option> <value>   (strategy, timeout, 2vl, vectorized, parallelism)`)
			break
		}
		show(c.Do(service.Request{Op: service.OpSet, Key: fields[0], Value: fields[1]}))
	case strings.HasPrefix(trimmed, `\explain`):
		src := word(`\explain`)
		op := service.OpExplain
		if rest, ok := cutWord(src, "analyze"); ok {
			op, src = service.OpExplainAnalyze, rest
		}
		show(c.Do(service.Request{Op: op, SQL: src}))
	case strings.HasPrefix(trimmed, `\waterfall`):
		src := word(`\waterfall`)
		if src == "" {
			fmt.Println(`usage: \waterfall select ...`)
			break
		}
		show(c.Do(service.Request{Op: service.OpWaterfall, SQL: src}))
	case strings.HasPrefix(trimmed, `\stats`):
		show(c.Do(service.Request{Op: service.OpStats, Table: word(`\stats`)}))
	case trimmed == `\pin`:
		resp, err := c.Do(service.Request{Op: service.OpPin})
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		fmt.Printf("pinned at epoch %d\n", resp.Epoch)
	case trimmed == `\unpin`:
		if _, err := c.Do(service.Request{Op: service.OpUnpin}); err != nil {
			fmt.Println("error:", err)
			break
		}
		fmt.Println("unpinned — reading latest")
	default:
		fmt.Println(`unknown command; try \q, \tables, \strategy, \set, \2vl, \vec, \explain, \waterfall, \stats, \pin, \unpin`)
	}
	return false
}

// remoteRun classifies and executes one SQL statement remotely,
// printing the result like the local shell.
func remoteRun(c *service.LineClient, src string) error {
	req := service.Request{Op: service.OpQuery, SQL: src}
	lead := strings.ToUpper(strings.Fields(strings.TrimSpace(src) + " x")[0])
	switch lead {
	case "ANALYZE":
		req = service.Request{Op: service.OpAnalyze, Table: strings.TrimSpace(src[len("analyze"):])}
	case "INSERT", "DELETE", "UPDATE", "CREATE", "DROP":
		req.Op = service.OpExec
	}
	start := time.Now()
	resp, err := c.Do(req)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	switch req.Op {
	case service.OpAnalyze:
		fmt.Printf("(statistics collected, %v)\n", elapsed.Round(time.Microsecond))
	case service.OpExec:
		fmt.Printf("(%d rows affected, %v)\n", resp.RowsAffected, elapsed.Round(time.Microsecond))
	default:
		printTable(resp.Columns, resp.Rows)
		fmt.Printf("(%d rows, server %s, round trip %v)\n",
			len(resp.Rows), time.Duration(resp.ElapsedUS)*time.Microsecond,
			elapsed.Round(time.Microsecond))
	}
	return nil
}

// printTable renders a wire result as an aligned text table, mirroring
// the local shell's relation rendering.
func printTable(cols []string, rows [][]any) {
	widths := make([]int, len(cols))
	for i, c := range cols {
		widths[i] = len(c)
	}
	cells := make([][]string, len(rows))
	for r, row := range rows {
		cells[r] = make([]string, len(row))
		for i, v := range row {
			s := renderCell(v)
			cells[r][i] = s
			if i < len(widths) && len(s) > widths[i] {
				widths[i] = len(s)
			}
		}
	}
	var b strings.Builder
	for i, c := range cols {
		fmt.Fprintf(&b, "%-*s  ", widths[i], c)
	}
	b.WriteByte('\n')
	for i := range cols {
		b.WriteString(strings.Repeat("-", widths[i]) + "  ")
	}
	b.WriteByte('\n')
	for _, row := range cells {
		for i, s := range row {
			fmt.Fprintf(&b, "%-*s  ", widths[i], s)
		}
		b.WriteByte('\n')
	}
	fmt.Print(b.String())
}

// renderCell formats one JSON-decoded value. Numbers arrive as float64;
// integral ones print without a decimal point.
func renderCell(v any) string {
	switch x := v.(type) {
	case nil:
		return "NULL"
	case float64:
		if x == float64(int64(x)) {
			return fmt.Sprintf("%d", int64(x))
		}
		return fmt.Sprintf("%g", x)
	default:
		return fmt.Sprintf("%v", x)
	}
}
