// Command nraql is an interactive SQL shell over the nested relational
// query engine. It loads a deterministic TPC-H database (or starts empty)
// and executes SELECT statements under a chosen strategy.
//
// Usage:
//
//	nraql [-tpch 0.001] [-strategy nested-optimized] [-mem 64M]
//	      [-timeout 30s] [-2vl] [-vectorized] [-debug-addr localhost:6060]
//	      [-slow-query 100ms] [-e "select ..."]
//	nraql -open data/ [-save data/] [-storage columnar|csv] ...
//	nraql -connect host:port [-e "select ..."]
//
// -open loads a database directory written by -save or nrad -dir;
// -save writes the database out on exit, as binary columnar segments
// by default (-storage csv exports portable CSV; see docs/STORAGE.md).
//
// With -connect the shell speaks the nrad line protocol instead of
// embedding the engine: statements execute in a server-side session,
// and \strategy, \set, \2vl, \vec, \explain, \waterfall, \stats,
// \tables, \pin and \unpin operate on that session remotely (see
// docs/SERVICE.md).
//
// Inside the shell:
//
//	select ...;                 run a query
//	analyze [table];            collect optimizer statistics
//	\strategy <name>            switch strategy (auto | nested-optimized |
//	                            nested-original | nested-parallel |
//	                            native | reference)
//	\explain select ...;        show the plan instead of running
//	\explain analyze select ..; run, then show estimated vs actual rows
//	\waterfall select ...;      run traced, then draw the span waterfall
//	\2vl on|off                 toggle two-valued logic (NULL comparisons
//	                            are FALSE; negative operators antijoin)
//	\vec on|off                 toggle vectorized batch-at-a-time
//	                            execution (identical results; EXPLAIN
//	                            shows [batch]/[row] per operator)
//	\stats <table>              show a table's collected statistics
//	\tables                     list tables with row counts
//	\q                          quit
//
// Ctrl-C cancels the query in flight and returns to the prompt; Ctrl-C
// at the prompt (or pressed twice) exits the shell.
//
// -debug-addr serves expvar metrics and net/http/pprof on a private HTTP
// endpoint; -slow-query/-slow-log write a JSON-lines slow-query log (see
// docs/OBSERVABILITY.md).
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"nra"
	"nra/internal/obsv"
)

// inflight holds the cancel function of the query currently executing,
// nil when the shell is idle. The SIGINT handler swaps it out: Ctrl-C
// during a query cancels that query and returns to the prompt; Ctrl-C
// at the prompt (or a second Ctrl-C) exits.
var inflight atomic.Pointer[context.CancelFunc]

func installInterrupt() {
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt)
	go func() {
		for range sigc {
			if cancel := inflight.Swap(nil); cancel != nil {
				(*cancel)()
				fmt.Fprintln(os.Stderr, "\n(query canceled — Ctrl-C again to quit)")
				continue
			}
			fmt.Fprintln(os.Stderr, "\nnraql: interrupted")
			os.Exit(130)
		}
	}()
}

var strategyNames = map[string]nra.Strategy{
	"auto":             nra.Auto,
	"nested-optimized": nra.NestedOptimized,
	"nested-original":  nra.NestedOriginal,
	"nested-parallel":  nra.NestedParallel,
	"native":           nra.Native,
	"reference":        nra.Reference,
}

func main() {
	var (
		sf    = flag.Float64("tpch", 0.001, "load TPC-H at this scale factor (0 = start empty)")
		strat = flag.String("strategy", "auto", "execution strategy")
		eval  = flag.String("e", "", "execute one statement and exit")
		file  = flag.String("f", "", "execute a ';'-separated SQL script and exit")
		seed  = flag.Uint64("seed", 42, "TPC-H generator seed")
		trace = flag.Bool("trace", false, "print the per-operator execution walkthrough")
		par   = flag.Int("parallelism", -1, "degree of partitioned parallelism for nested strategies (1 = serial, 0 = all CPUs, -1 = strategy default)")
		mem   = flag.String("mem", "", "memory budget for operator working state, e.g. 64K, 16M, 1G (empty = unbounded); over-budget operators spill to disk")
		tmo   = flag.Duration("timeout", 0, "per-query timeout, e.g. 30s (0 = none)")
		twoVL = flag.Bool("2vl", false, "evaluate under two-valued logic: NULL comparisons are FALSE; NOT IN / NOT EXISTS / ALL unnest to antijoins")
		vect  = flag.Bool("vectorized", false, "execute the hot path batch-at-a-time (identical results; serial in-memory path only)")
		anlz  = flag.Bool("analyze", true, "collect optimizer statistics on the loaded tables at startup (enables cost-based planning)")
		dbg   = flag.String("debug-addr", "", "serve the debug HTTP endpoint (expvar metrics + pprof) on this address, e.g. localhost:6060 (empty = off; bind to localhost only — see docs/OBSERVABILITY.md)")
		slowQ = flag.Duration("slow-query", -1, "log queries at least this slow to the slow-query log (0 = every query, negative = off)")
		slowF = flag.String("slow-log", "", "slow-query log destination file (JSON lines; empty = stderr)")
		conn  = flag.String("connect", "", "connect to an nrad server's line protocol at host:port instead of embedding the engine")
		open  = flag.String("open", "", "load a database directory written by -save (or nrad -dir) instead of generating TPC-H")
		save  = flag.String("save", "", "save the database to this directory before exiting")
		store = flag.String("storage", "columnar", "on-disk table format for -save: columnar or csv")
	)
	flag.Parse()

	if *conn != "" {
		remoteMain(*conn, *eval)
		return
	}

	strategy, ok := strategyNames[*strat]
	if !ok {
		fail(fmt.Errorf("unknown strategy %q", *strat))
	}
	if *par >= 0 {
		n := *par
		if n == 0 {
			n = runtime.NumCPU()
		}
		strategy = strategy.WithParallelism(n)
	}
	if *mem != "" {
		bytes, err := parseBytes(*mem)
		if err != nil {
			fail(err)
		}
		strategy = strategy.WithMemoryBudget(bytes)
	}
	if *tmo > 0 {
		strategy = strategy.WithTimeout(*tmo)
	}
	if *twoVL {
		strategy = strategy.WithTwoValuedLogic(true)
	}
	if *vect {
		strategy = strategy.WithVectorized(true)
	}
	if *trace {
		strategy = nra.Traced(strategy, os.Stderr)
	}

	var db *nra.DB
	switch {
	case *open != "":
		var err error
		db, err = nra.OpenDir(*open)
		if err != nil {
			fail(err)
		}
	case *sf > 0:
		cfg := nra.TPCHScale(*sf)
		cfg.Seed = *seed
		var err error
		db, err = nra.OpenTPCH(cfg)
		if err != nil {
			fail(err)
		}
	default:
		db = nra.Open()
	}
	if err := db.SetStorageFormat(*store); err != nil {
		fail(err)
	}
	saveOnExit := func() {
		if *save == "" {
			return
		}
		if err := db.Save(*save); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "saved to %s (%s format)\n", *save, *store)
	}
	if *anlz {
		if err := db.Analyze(); err != nil {
			fail(err)
		}
	}
	if *dbg != "" {
		addr, stop, err := obsv.ServeDebug(*dbg, obsv.Default())
		if err != nil {
			fail(err)
		}
		defer stop()
		fmt.Fprintf(os.Stderr, "debug endpoint: http://%s/debug/\n", addr)
	}
	if *slowQ >= 0 {
		w := os.Stderr
		if *slowF != "" {
			f, err := os.OpenFile(*slowF, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			w = f
		}
		db.SetSlowQueryLog(w, *slowQ)
	}

	installInterrupt()

	if *eval != "" {
		if err := run(db, strategy, *eval); err != nil {
			fail(err)
		}
		saveOnExit()
		return
	}
	if *file != "" {
		data, err := os.ReadFile(*file)
		if err != nil {
			fail(err)
		}
		for _, stmt := range strings.Split(string(data), ";") {
			stmt = strings.TrimSpace(stmt)
			if stmt == "" || strings.HasPrefix(stmt, "--") {
				continue
			}
			if err := run(db, strategy, stmt); err != nil {
				fail(fmt.Errorf("%s: %w", stmt, err))
			}
		}
		saveOnExit()
		return
	}

	fmt.Printf("nraql — nested relational subquery processor (strategy: %s)\n", strategy)
	if *sf > 0 {
		fmt.Printf("TPC-H sf=%g loaded: %s\n", *sf, strings.Join(db.Tables(), ", "))
	}
	fmt.Println(`type SQL ending with ';', or \q to quit`)

	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Print("nraql> ")
		} else {
			fmt.Print("  ...> ")
		}
	}
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, `\`) {
			switch {
			case trimmed == `\q` || trimmed == `\quit`:
				saveOnExit()
				return
			case trimmed == `\tables`:
				for _, t := range db.Tables() {
					n, _ := db.NumRows(t)
					fmt.Printf("  %-12s %8d rows\n", t, n)
				}
			case strings.HasPrefix(trimmed, `\strategy`):
				name := strings.TrimSpace(strings.TrimPrefix(trimmed, `\strategy`))
				if s, ok := strategyNames[name]; ok {
					strategy = s
					fmt.Printf("strategy: %s\n", strategy)
				} else {
					fmt.Printf("unknown strategy %q (try: auto, nested-optimized, nested-original, nested-parallel, native, reference)\n", name)
				}
			case strings.HasPrefix(trimmed, `\explain`):
				src := strings.TrimSuffix(strings.TrimSpace(strings.TrimPrefix(trimmed, `\explain`)), ";")
				var out string
				var err error
				if rest, ok := cutWord(src, "analyze"); ok {
					out, err = db.ExplainAnalyze(rest, strategy)
				} else {
					out, err = db.Explain(src, strategy)
				}
				if err != nil {
					fmt.Println("error:", err)
				} else {
					fmt.Print(out)
				}
			case strings.HasPrefix(trimmed, `\waterfall`):
				src := strings.TrimSuffix(strings.TrimSpace(strings.TrimPrefix(trimmed, `\waterfall`)), ";")
				if src == "" {
					fmt.Println(`usage: \waterfall select ...`)
				} else if _, err := db.QueryWith(src, strategy.WithTracing(true)); err != nil {
					fmt.Println("error:", err)
				} else {
					fmt.Print(db.LastTrace().Waterfall())
				}
			case strings.HasPrefix(trimmed, `\2vl`):
				arg := strings.TrimSpace(strings.TrimPrefix(trimmed, `\2vl`))
				switch arg {
				case "on":
					strategy = strategy.WithTwoValuedLogic(true)
					fmt.Printf("strategy: %s\n", strategy)
				case "off":
					strategy = strategy.WithTwoValuedLogic(false)
					fmt.Printf("strategy: %s\n", strategy)
				default:
					fmt.Println(`usage: \2vl on|off`)
				}
			case strings.HasPrefix(trimmed, `\vec`):
				arg := strings.TrimSpace(strings.TrimPrefix(trimmed, `\vec`))
				switch arg {
				case "on":
					strategy = strategy.WithVectorized(true)
					fmt.Printf("strategy: %s\n", strategy)
				case "off":
					strategy = strategy.WithVectorized(false)
					fmt.Printf("strategy: %s\n", strategy)
				default:
					fmt.Println(`usage: \vec on|off`)
				}
			case strings.HasPrefix(trimmed, `\stats`):
				name := strings.TrimSpace(strings.TrimPrefix(trimmed, `\stats`))
				if name == "" {
					fmt.Println(`usage: \stats <table>`)
				} else if out, err := db.StatsSummary(name); err != nil {
					fmt.Println("error:", err)
				} else {
					fmt.Print(out)
				}
			default:
				fmt.Println(`unknown command; try \q, \tables, \strategy, \2vl, \vec, \explain, \waterfall, \stats`)
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.HasSuffix(trimmed, ";") {
			src := strings.TrimSuffix(strings.TrimSpace(buf.String()), ";")
			buf.Reset()
			if err := run(db, strategy, src); err != nil {
				fmt.Println("error:", err)
			}
		}
		prompt()
	}
	saveOnExit()
}

// cutWord strips a leading keyword (case-insensitively) from s, reporting
// whether it was present.
func cutWord(s, word string) (string, bool) {
	t := strings.TrimSpace(s)
	if len(t) >= len(word) && strings.EqualFold(t[:len(word)], word) &&
		(len(t) == len(word) || t[len(word)] == ' ' || t[len(word)] == '\t' || t[len(word)] == '\n') {
		return strings.TrimSpace(t[len(word):]), true
	}
	return s, false
}

// run executes one statement. Queries run under a cancelable context
// registered with the SIGINT handler, so Ctrl-C aborts the query —
// not the session.
func run(db *nra.DB, s nra.Strategy, src string) error {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	inflight.Store(&cancel)
	defer inflight.Store(nil)

	start := time.Now()
	lead := strings.ToUpper(strings.Fields(strings.TrimSpace(src) + " x")[0])
	if lead == "ANALYZE" {
		rest := strings.TrimSpace(src[len("analyze"):])
		var err error
		if rest == "" {
			err = db.Analyze()
		} else {
			err = db.Analyze(strings.Fields(rest)...)
		}
		if err != nil {
			return err
		}
		fmt.Printf("(statistics collected, %v)\n", time.Since(start).Round(time.Microsecond))
		return nil
	}
	if lead == "INSERT" || lead == "DELETE" || lead == "UPDATE" || lead == "CREATE" || lead == "DROP" {
		n, err := db.Exec(src)
		if err != nil {
			return err
		}
		fmt.Printf("(%d rows affected, %v)\n", n, time.Since(start).Round(time.Microsecond))
		return nil
	}
	res, err := db.QueryWithContext(ctx, src, s)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	res.Sort()
	fmt.Print(res)
	fmt.Printf("(%d rows, %s, %v)\n", res.NumRows(), s, elapsed.Round(time.Microsecond))
	return nil
}

// parseBytes parses a byte count with an optional K/M/G suffix (powers
// of 1024; lowercase and a trailing "B"/"iB" are accepted).
func parseBytes(s string) (int64, error) {
	orig := s
	s = strings.TrimSpace(strings.ToUpper(s))
	s = strings.TrimSuffix(s, "IB")
	s = strings.TrimSuffix(s, "B")
	shift := 0
	switch {
	case strings.HasSuffix(s, "K"):
		shift, s = 10, strings.TrimSuffix(s, "K")
	case strings.HasSuffix(s, "M"):
		shift, s = 20, strings.TrimSuffix(s, "M")
	case strings.HasSuffix(s, "G"):
		shift, s = 30, strings.TrimSuffix(s, "G")
	}
	n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("invalid -mem value %q (want e.g. 65536, 64K, 16M, 1G)", orig)
	}
	if shift > 0 && n > (1<<62)>>shift {
		return 0, fmt.Errorf("-mem value %q overflows", orig)
	}
	return n << shift, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "nraql:", err)
	os.Exit(1)
}
