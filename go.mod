module nra

go 1.22
