package nra

import (
	"context"

	"nra/internal/catalog"
)

// Snap is a pinned, immutable snapshot of the database: every query run
// through it sees exactly the table versions — rows, constraints,
// indexes and statistics — that were current when Snapshot was called,
// no matter how much concurrent DML commits afterwards. Snaps are cheap
// (no copying) and safe for concurrent use.
type Snap struct {
	db   *DB
	snap *catalog.Snapshot
}

// Snapshot pins the current version of the database for repeatable
// reads across several queries.
func (db *DB) Snapshot() *Snap {
	return &Snap{db: db, snap: db.cat.Snapshot()}
}

// Epoch identifies the pinned version; it increases with every
// committed mutation.
func (s *Snap) Epoch() uint64 { return s.snap.Epoch() }

// Query executes src against the pinned snapshot with the default
// strategy.
func (s *Snap) Query(src string) (*Result, error) { return s.QueryWith(src, Auto) }

// QueryWith executes src against the pinned snapshot with an explicit
// strategy.
func (s *Snap) QueryWith(src string, strategy Strategy) (*Result, error) {
	return s.QueryWithContext(context.Background(), src, strategy)
}

// QueryWithContext is QueryWith with a cancellation context: the query
// aborts with the context's error at the next operator boundary after
// ctx is cancelled. The statement binds against the pinned snapshot
// (through the database's plan cache, when one is installed — the cache
// key includes the snapshot's epoch, so a pinned session shares entries
// only with sessions on the same version).
func (s *Snap) QueryWithContext(ctx context.Context, src string, strategy Strategy) (*Result, error) {
	st, err := analyzeCached(s.db.planCache, s.snap, src)
	if err != nil {
		return nil, err
	}
	rel, err := s.db.executeStatement(ctx, st, strategy, src)
	if err != nil {
		return nil, err
	}
	return &Result{rel: rel}, nil
}

// Frozen deep-copies the pinned snapshot into a fully independent
// in-memory database — the oracle the concurrency tests compare
// against, and a general "fork the database at this instant" tool.
func (s *Snap) Frozen() (*DB, error) {
	cat, err := s.snap.Materialize()
	if err != nil {
		return nil, err
	}
	return &DB{cat: cat}, nil
}
