package nra

import (
	"nra/internal/relation"
	"nra/internal/value"
)

// Result is a query result: a flat relation of output rows.
type Result struct {
	rel *relation.Relation
}

// Columns returns the output column names (select-item aliases or
// expressions).
func (r *Result) Columns() []string { return r.rel.Schema.ColNames() }

// NumRows returns the row count.
func (r *Result) NumRows() int { return r.rel.Len() }

// Rows converts the result to native Go values: int64, float64, string,
// bool, or nil for NULL.
func (r *Result) Rows() [][]any {
	out := make([][]any, r.rel.Len())
	for i, t := range r.rel.Tuples {
		row := make([]any, len(t.Atoms))
		for j, v := range t.Atoms {
			row[j] = toGo(v)
		}
		out[i] = row
	}
	return out
}

func toGo(v value.Value) any {
	switch v.Kind() {
	case value.KindNull:
		return nil
	case value.KindInt:
		return v.Int64()
	case value.KindFloat:
		return v.Float64()
	case value.KindString:
		return v.Text()
	case value.KindBool:
		return v.Truth() == value.True
	}
	return nil
}

// String renders the result as an aligned text table.
func (r *Result) String() string { return r.rel.String() }

// Equal reports whether two results contain the same multiset of rows
// (order-insensitive).
func (r *Result) Equal(o *Result) bool { return r.rel.EqualSet(o.rel) }

// Sort orders rows canonically, for deterministic display.
func (r *Result) Sort() { r.rel.SortCanonical() }
